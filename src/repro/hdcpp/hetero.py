"""Hetero-C++ style generic parallel constructs.

HDC++ is built on top of Hetero-C++ (Section 2.4 of the paper): besides the
HDC-specific primitives, applications can express *generic* task and data
parallelism that is not captured by an HDC primitive.  The canonical example
from the paper is HyperOMS' level-ID encoding, whose outer loop over spectra
is a generic parallel loop.

The reproduction provides :func:`parallel_map`, which applies a per-row
implementation function to every row of a hypermatrix.  When traced it
records a ``hetero.parallel_map`` operation; the IR builder turns that
operation into an *internal* dataflow node whose child leaf node has one
dynamic instance per row — the HPVM representation of a parallel loop.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy
from repro.hdcpp.program import TracedFunction, TracingError, Value, current_builder
from repro.hdcpp.types import ElementType, float32
from repro.ir.ops import Opcode, infer_result_type

__all__ = ["parallel_map", "hetero_attributes"]


def hetero_attributes(*values, num_outputs: int = 1) -> None:
    """Marker mirroring ``__hpvm__attributes`` — a documentation no-op.

    In HPVM the attributes marker annotates which pointers are node inputs
    and outputs.  The tracing DSL derives this information from dataflow, so
    the marker exists purely to keep ported HDC++ sources recognisable.
    """
    return None


def parallel_map(
    impl: Union[TracedFunction, Callable],
    inputs,
    extra=None,
    output_dim: Optional[int] = None,
    element: ElementType = float32,
    batch_impl: Optional[Callable] = None,
):
    """Apply ``impl`` to every row of ``inputs`` in parallel.

    Args:
        impl: Per-row implementation (traced function or Python callable).
            It receives one row of ``inputs`` as a hypervector plus, when
            supplied, the ``extra`` operand (e.g. a shared codebook
            hypermatrix), and returns one output hypervector.
        inputs: Hypermatrix whose rows are processed independently.
        extra: Optional additional operand shared by every instance.
        output_dim: Length of the produced rows (defaults to the input
            row length).
        element: Element type of the produced hypermatrix.
        batch_impl: Optional whole-hypermatrix formulation of the same
            per-row algorithm, taking ``(inputs[, extra])`` and returning
            one output row per input row.  Recorded as an operation
            attribute, so traced programs carry *both* routes: batched
            back ends try ``batch_impl`` (or, failing that,
            auto-vectorization of ``impl``) under a boundary-row
            bit-identity gate, and ``impl`` stays the reference the gate
            checks against.

    Returns:
        A hypermatrix with one output row per input row.
    """
    if isinstance(impl, TracedFunction):
        attrs = {"impl": impl.name}
    elif callable(impl):
        attrs = {"impl_callable": impl}
    else:
        raise TracingError(f"parallel_map implementation must be traced or callable, got {impl!r}")
    if output_dim is not None:
        attrs["output_dim"] = int(output_dim)
    attrs["element"] = element
    if batch_impl is not None:
        if not callable(batch_impl):
            raise TracingError(f"parallel_map batch_impl must be callable, got {batch_impl!r}")
        attrs["batch_impl"] = batch_impl

    if isinstance(inputs, Value):
        builder = current_builder()
        if builder is None:
            raise TracingError("parallel_map on traced values requires an active trace")
        operands = [inputs] if extra is None else [inputs, extra]
        result_type = infer_result_type(Opcode.PARALLEL_MAP, [v.type for v in operands], attrs)
        return builder.emit(Opcode.PARALLEL_MAP, operands, attrs, result_type)

    return _eager_parallel_map(impl, inputs, extra, element, batch_impl=batch_impl, output_dim=output_dim)


#: Errors that indicate an implementation function is not batchable (it was
#: written for a single row and chokes on a whole hypermatrix); anything
#: else — a genuine implementation bug — must propagate.  Extends the
#: batched-strategy set of :class:`repro.backends.executor
#: .HostStageExecutor` with AttributeError/KeyError because the eager
#: probe is *speculative*: a row impl touching HyperVector-only surface
#: (``.dim``, ``len(row)``, ``row[i]``) must fall back, not crash code
#: that worked before vectorization.
_BATCH_FALLBACK_ERRORS = (TypeError, ValueError, IndexError, AttributeError, KeyError)


def _apply_row(impl, row, extra):
    return impl(row) if extra is None else impl(row, extra)


def _eager_parallel_map(impl, inputs, extra, element: ElementType, batch_impl=None, output_dim=None):
    """Eager execution: one vectorized pass when possible, per-row otherwise.

    The hot path hands the *whole* hypermatrix to ``batch_impl`` (when
    declared) or to ``impl`` itself in a single call, so row-wise NumPy
    implementations (every elementwise primitive, and encoders written to
    broadcast) run as one library call instead of ``rows`` Python
    iterations — the ROADMAP-flagged eager-encoder bottleneck.  The
    batched result is accepted only when it is **bit-identical** to the
    per-row loop on the boundary rows: the first and last row are
    recomputed via the per-row path and compared exactly, which rejects
    implementations whose matrix semantics differ from row-at-a-time
    application (reductions or scans across the row axis).  On a shape
    mismatch, a fallback error or a boundary-row mismatch, the original
    per-row loop runs instead, so results never change — only the number
    of Python-level iterations does.
    """
    if isinstance(impl, TracedFunction):
        raise TracingError(
            "eager parallel_map requires a Python callable implementation; "
            "traced implementations are executed by compiled programs"
        )
    inputs_hm = inputs if isinstance(inputs, HyperMatrix) else HyperMatrix(as_numpy(inputs))
    n_rows = inputs_hm.rows
    if n_rows == 0:
        cols = inputs_hm.cols if output_dim is None else int(output_dim)
        if batch_impl is not None:
            try:
                empty = as_numpy(_apply_row(batch_impl, inputs_hm, extra))
                if empty.ndim >= 2 and empty.shape[0] == 0:
                    return HyperMatrix(empty, element)
            except _BATCH_FALLBACK_ERRORS:
                pass
        return HyperMatrix(np.zeros((0, cols), dtype=element.numpy_dtype), element)
    first = _apply_row(impl, inputs_hm.row(0), extra)
    out_element = first.element if isinstance(first, (HyperVector, HyperMatrix)) else element
    first_arr = as_numpy(first)
    last_arr = (
        first_arr
        if n_rows == 1
        else as_numpy(_apply_row(impl, inputs_hm.row(n_rows - 1), extra))
    )
    for candidate in (batch_impl, impl):
        if candidate is None:
            continue
        try:
            batched = _apply_row(candidate, inputs_hm, extra)
        except _BATCH_FALLBACK_ERRORS:
            continue
        batched_arr = as_numpy(batched)
        if (
            batched_arr.ndim == first_arr.ndim + 1
            and batched_arr.shape[0] == n_rows
            and batched_arr.shape[1:] == first_arr.shape
            and batched_arr.dtype == first_arr.dtype  # bit identity includes bytes
            and np.array_equal(batched_arr[0], first_arr)
            and np.array_equal(batched_arr[-1], last_arr)
        ):
            if isinstance(batched, (HyperVector, HyperMatrix)):
                out_element = batched.element
            return HyperMatrix(batched_arr, out_element)
    if n_rows == 1:
        return HyperMatrix(np.stack([first_arr]), out_element)
    rows = [first_arr]
    for i in range(1, n_rows - 1):
        rows.append(as_numpy(_apply_row(impl, inputs_hm.row(i), extra)))
    rows.append(last_arr)
    return HyperMatrix(np.stack(rows), out_element)
