"""The 24 HDC algorithmic primitives of HDC++ (Table 1 of the paper).

Every primitive is *dual mode*:

* **Traced mode** — when its hypervector / hypermatrix operands are symbolic
  :class:`~repro.hdcpp.program.Value`\\ s (i.e. the call happens inside a
  function being traced via :meth:`Program.define`), the primitive records an
  HPVM-HDC IR operation and returns a new symbolic value.
* **Eager mode** — when called with concrete
  :class:`~repro.hdcpp.arrays.HyperVector` / :class:`HyperMatrix` values (or
  plain NumPy arrays), the primitive executes immediately using the reference
  kernels and returns a concrete value.  This gives the library a
  torchhd-style interactive surface and is how every kernel is unit tested.

The primitive names follow the paper's ``__hetero_hdc_*`` intrinsics with
the prefix dropped.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy, wrap_like
from repro.hdcpp.program import TracingError, Value, current_builder
from repro.hdcpp.types import (
    ElementType,
    HDType,
    HyperMatrixType,
    HyperVectorType,
    IndexType,
    IndexVectorType,
    ScalarType,
    float32,
)
from repro.ir.ops import Opcode, infer_result_type
from repro.kernels import reference as ref

__all__ = [
    "hypervector",
    "hypermatrix",
    "create_hypervector",
    "create_hypermatrix",
    "random_hypervector",
    "random_hypermatrix",
    "gaussian_hypervector",
    "gaussian_hypermatrix",
    "wrap_shift",
    "sign",
    "sign_flip",
    "add",
    "sub",
    "mul",
    "div",
    "absolute_value",
    "cosine",
    "l2norm",
    "get_element",
    "type_cast",
    "arg_min",
    "arg_max",
    "set_matrix_row",
    "get_matrix_row",
    "matrix_transpose",
    "cossim",
    "hamming_distance",
    "matmul",
    "red_perf",
]

EagerValue = Union[HyperVector, HyperMatrix, np.ndarray]
AnyValue = Union[Value, EagerValue]


# ---------------------------------------------------------------------------
# Mode dispatch helpers
# ---------------------------------------------------------------------------


def _is_traced(*operands: AnyValue) -> bool:
    traced = any(isinstance(v, Value) for v in operands)
    if traced and current_builder() is None:
        raise TracingError("symbolic values used outside of an active trace")
    if traced and not all(isinstance(v, Value) for v in operands):
        raise TracingError(
            "cannot mix symbolic and concrete operands; pass concrete data as program inputs"
        )
    return traced


def _eager_type(value: EagerValue) -> HDType:
    if isinstance(value, (HyperVector, HyperMatrix)):
        return value.type
    arr = np.asarray(value)
    element = float32
    if arr.ndim == 0:
        return ScalarType(element)
    if arr.ndim == 1:
        return HyperVectorType(arr.shape[0], element)
    if arr.ndim == 2:
        return HyperMatrixType(arr.shape[0], arr.shape[1], element)
    raise ValueError(f"unsupported eager value of rank {arr.ndim}")


def _emit(opcode: Opcode, operands: list[Value], attrs: dict) -> Value:
    builder = current_builder()
    if builder is None:
        raise TracingError(f"{opcode} used in traced mode outside of an active trace")
    result_type = infer_result_type(opcode, [v.type for v in operands], attrs)
    return builder.emit(opcode, operands, attrs, result_type)


def _emit_no_result(opcode: Opcode, operands: list[Value], attrs: dict) -> None:
    builder = current_builder()
    if builder is None:
        raise TracingError(f"{opcode} used in traced mode outside of an active trace")
    builder.emit(opcode, operands, attrs, None)


def _wrap_result(data: np.ndarray, result_type: HDType):
    if isinstance(result_type, (HyperVectorType, HyperMatrixType)):
        return wrap_like(data, result_type.element)
    if isinstance(result_type, (IndexType, IndexVectorType)):
        return np.asarray(data, dtype=np.int64)
    # Scalar results are returned as plain Python / NumPy scalars.
    arr = np.asarray(data)
    return arr.item() if arr.ndim == 0 else arr


def _eager_unary(opcode: Opcode, kernel, x: EagerValue, attrs: Optional[dict] = None, **kernel_kwargs):
    attrs = attrs or {}
    result_type = infer_result_type(opcode, [_eager_type(x)], attrs)
    return _wrap_result(kernel(as_numpy(x), **kernel_kwargs), result_type)


def _eager_binary(opcode: Opcode, kernel, lhs: EagerValue, rhs: EagerValue, attrs: Optional[dict] = None, **kernel_kwargs):
    attrs = attrs or {}
    result_type = infer_result_type(opcode, [_eager_type(lhs), _eager_type(rhs)], attrs)
    return _wrap_result(kernel(as_numpy(lhs), as_numpy(rhs), **kernel_kwargs), result_type)


def _default_rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Initialization primitives
# ---------------------------------------------------------------------------


def hypervector(dim: int, element: ElementType = float32):
    """``hypervector()`` — an empty (zero-initialized) hypervector."""
    attrs = {"dim": int(dim), "element": element}
    if current_builder() is not None:
        return _emit(Opcode.EMPTY_HYPERVECTOR, [], attrs)
    return HyperVector.empty(dim, element)


def hypermatrix(rows: int, cols: int, element: ElementType = float32):
    """``hypermatrix()`` — an empty (zero-initialized) hypermatrix."""
    attrs = {"rows": int(rows), "cols": int(cols), "element": element}
    if current_builder() is not None:
        return _emit(Opcode.EMPTY_HYPERMATRIX, [], attrs)
    return HyperMatrix.empty(rows, cols, element)


def create_hypervector(dim: int, init: Callable[[int], float], element: ElementType = float32):
    """``create_hypervector(f)`` — initialize each element with ``f(i)``."""
    attrs = {"dim": int(dim), "element": element, "init_fn": init}
    if current_builder() is not None:
        return _emit(Opcode.CREATE_HYPERVECTOR, [], attrs)
    return HyperVector.create(dim, init, element)


def create_hypermatrix(rows: int, cols: int, init: Callable[[int, int], float], element: ElementType = float32):
    """``create_hypermatrix(f)`` — initialize each element with ``f(i, j)``."""
    attrs = {"rows": int(rows), "cols": int(cols), "element": element, "init_fn": init}
    if current_builder() is not None:
        return _emit(Opcode.CREATE_HYPERMATRIX, [], attrs)
    return HyperMatrix.create(rows, cols, init, element)


def random_hypervector(
    dim: int,
    element: ElementType = float32,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
):
    """``random_hypervector()`` — uniform random values (bipolar for ints)."""
    attrs = {"dim": int(dim), "element": element, "seed": seed}
    if current_builder() is not None:
        return _emit(Opcode.RANDOM_HYPERVECTOR, [], attrs)
    return HyperVector.random(dim, element, _default_rng(rng, seed))


def random_hypermatrix(
    rows: int,
    cols: int,
    element: ElementType = float32,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
):
    """``random_hypermatrix()`` — uniform random values (bipolar for ints)."""
    attrs = {"rows": int(rows), "cols": int(cols), "element": element, "seed": seed}
    if current_builder() is not None:
        return _emit(Opcode.RANDOM_HYPERMATRIX, [], attrs)
    return HyperMatrix.random(rows, cols, element, _default_rng(rng, seed))


def gaussian_hypervector(
    dim: int,
    element: ElementType = float32,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
):
    """``gaussian_hypervector()`` — i.i.d. standard normal values."""
    attrs = {"dim": int(dim), "element": element, "seed": seed}
    if current_builder() is not None:
        return _emit(Opcode.GAUSSIAN_HYPERVECTOR, [], attrs)
    return HyperVector.gaussian(dim, element, _default_rng(rng, seed))


def gaussian_hypermatrix(
    rows: int,
    cols: int,
    element: ElementType = float32,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
):
    """``gaussian_hypermatrix()`` — i.i.d. standard normal values."""
    attrs = {"rows": int(rows), "cols": int(cols), "element": element, "seed": seed}
    if current_builder() is not None:
        return _emit(Opcode.GAUSSIAN_HYPERMATRIX, [], attrs)
    return HyperMatrix.gaussian(rows, cols, element, _default_rng(rng, seed))


# ---------------------------------------------------------------------------
# Element-wise primitives
# ---------------------------------------------------------------------------


def wrap_shift(x: AnyValue, shift_amount: int):
    """Rotate the elements of a hypervector with wrap-around."""
    attrs = {"shift_amount": int(shift_amount)}
    if _is_traced(x):
        return _emit(Opcode.WRAP_SHIFT, [x], attrs)
    return _eager_unary(Opcode.WRAP_SHIFT, ref.wrap_shift, x, attrs, shift_amount=int(shift_amount))


def sign(x: AnyValue):
    """Map each element to +1 / -1 by its sign; the result is 1-bit bipolar."""
    if _is_traced(x):
        return _emit(Opcode.SIGN, [x], {})
    return _eager_unary(Opcode.SIGN, ref.sign, x)


def sign_flip(x: AnyValue):
    """Flip the sign of every element."""
    if _is_traced(x):
        return _emit(Opcode.SIGN_FLIP, [x], {})
    return _eager_unary(Opcode.SIGN_FLIP, ref.sign_flip, x)


def _ewise(opcode: Opcode, name: str, lhs: AnyValue, rhs: AnyValue):
    if _is_traced(lhs, rhs):
        return _emit(opcode, [lhs, rhs], {})
    return _eager_binary(opcode, lambda a, b: ref.elementwise(name, a, b), lhs, rhs)


def add(lhs: AnyValue, rhs: AnyValue):
    """Element-wise addition of hypervectors / hypermatrices."""
    return _ewise(Opcode.ADD, "add", lhs, rhs)


def sub(lhs: AnyValue, rhs: AnyValue):
    """Element-wise subtraction of hypervectors / hypermatrices."""
    return _ewise(Opcode.SUB, "sub", lhs, rhs)


def mul(lhs: AnyValue, rhs: AnyValue):
    """Element-wise multiplication (binding) of hypervectors / hypermatrices."""
    return _ewise(Opcode.MUL, "mul", lhs, rhs)


def div(lhs: AnyValue, rhs: AnyValue):
    """Element-wise division of hypervectors / hypermatrices."""
    return _ewise(Opcode.DIV, "div", lhs, rhs)


def absolute_value(x: AnyValue):
    """Element-wise absolute value."""
    if _is_traced(x):
        return _emit(Opcode.ABSOLUTE_VALUE, [x], {})
    return _eager_unary(Opcode.ABSOLUTE_VALUE, ref.absolute_value, x)


def cosine(x: AnyValue):
    """Element-wise cosine."""
    if _is_traced(x):
        return _emit(Opcode.COSINE, [x], {})
    return _eager_unary(Opcode.COSINE, ref.cosine, x)


def type_cast(x: AnyValue, element: ElementType):
    """Cast hypervector / hypermatrix elements to ``element``."""
    attrs = {"element": element}
    if _is_traced(x):
        return _emit(Opcode.TYPE_CAST, [x], attrs)
    result_type = infer_result_type(Opcode.TYPE_CAST, [_eager_type(x)], attrs)
    return _wrap_result(ref.type_cast(as_numpy(x), element.numpy_dtype), result_type)


# ---------------------------------------------------------------------------
# Access / shape primitives
# ---------------------------------------------------------------------------


def get_element(x: AnyValue, row_idx: int, col_idx: Optional[int] = None):
    """Index into a hypervector (one index) or hypermatrix (two indices)."""
    attrs = {"row_idx": int(row_idx), "col_idx": None if col_idx is None else int(col_idx)}
    if _is_traced(x):
        return _emit(Opcode.GET_ELEMENT, [x], attrs)
    return ref.get_element(as_numpy(x), row_idx, col_idx)


def arg_min(x: AnyValue):
    """Arg-min of a hypervector, or per-row arg-min of a hypermatrix."""
    if _is_traced(x):
        return _emit(Opcode.ARG_MIN, [x], {})
    return _eager_unary(Opcode.ARG_MIN, ref.arg_min, x)


def arg_max(x: AnyValue):
    """Arg-max of a hypervector, or per-row arg-max of a hypermatrix."""
    if _is_traced(x):
        return _emit(Opcode.ARG_MAX, [x], {})
    return _eager_unary(Opcode.ARG_MAX, ref.arg_max, x)


def set_matrix_row(mat: AnyValue, new_row: AnyValue, row_idx: int):
    """Replace row ``row_idx`` of a hypermatrix with ``new_row``.

    The primitive is functional: it produces a new hypermatrix value (in
    traced mode back ends may update in place when the old value is dead).
    """
    attrs = {"row_idx": int(row_idx)}
    if _is_traced(mat, new_row):
        return _emit(Opcode.SET_MATRIX_ROW, [mat, new_row], attrs)
    return _eager_binary(
        Opcode.SET_MATRIX_ROW,
        lambda m, r: ref.set_matrix_row(m, r, int(row_idx)),
        mat,
        new_row,
        attrs,
    )


def get_matrix_row(mat: AnyValue, row_idx: int):
    """Extract row ``row_idx`` of a hypermatrix as a hypervector."""
    attrs = {"row_idx": int(row_idx)}
    if _is_traced(mat):
        return _emit(Opcode.GET_MATRIX_ROW, [mat], attrs)
    return _eager_unary(Opcode.GET_MATRIX_ROW, lambda m: ref.get_matrix_row(m, int(row_idx)), mat, attrs)


def matrix_transpose(mat: AnyValue):
    """Transpose a hypermatrix."""
    if _is_traced(mat):
        return _emit(Opcode.MATRIX_TRANSPOSE, [mat], {})
    return _eager_unary(Opcode.MATRIX_TRANSPOSE, ref.matrix_transpose, mat)


# ---------------------------------------------------------------------------
# Reduction / similarity primitives
# ---------------------------------------------------------------------------


def l2norm(x: AnyValue):
    """L2 norm of a hypervector, or per-row norms of a hypermatrix."""
    if _is_traced(x):
        return _emit(Opcode.L2NORM, [x], {})
    return _eager_unary(Opcode.L2NORM, ref.l2norm, x)


def cossim(lhs: AnyValue, rhs: AnyValue):
    """Cosine similarity between hypervectors / hypermatrices."""
    if _is_traced(lhs, rhs):
        return _emit(Opcode.COSSIM, [lhs, rhs], {})
    return _eager_binary(Opcode.COSSIM, ref.cossim, lhs, rhs)


def hamming_distance(lhs: AnyValue, rhs: AnyValue):
    """Hamming distance between hypervectors / hypermatrices."""
    if _is_traced(lhs, rhs):
        return _emit(Opcode.HAMMING_DISTANCE, [lhs, rhs], {})
    return _eager_binary(Opcode.HAMMING_DISTANCE, ref.hamming_distance, lhs, rhs)


def matmul(lhs: AnyValue, rhs: AnyValue):
    """Matrix multiplication: ``matmul(features, rp_matrix)`` encodes features.

    With ``lhs: hypervector<C>`` and ``rhs: hypermatrix<R, C>`` the result is
    ``hypervector<R>`` (= ``rhs @ lhs``); with ``lhs: hypermatrix<N, C>`` the
    result is ``hypermatrix<N, R>``.
    """
    if _is_traced(lhs, rhs):
        return _emit(Opcode.MATMUL, [lhs, rhs], {})
    return _eager_binary(Opcode.MATMUL, ref.matmul, lhs, rhs)


# ---------------------------------------------------------------------------
# Approximation directive
# ---------------------------------------------------------------------------


def red_perf(result: AnyValue, begin: int, end: int, stride: int):
    """Annotate the reduction producing ``result`` with perforation bounds.

    ``red_perf`` is a compiler directive (Section 4.2): it does not compute
    anything itself.  The reduction-perforation transform folds the
    ``(begin, end, stride)`` parameters into the producing ``matmul`` /
    ``cossim`` / ``hamming_distance`` / ``l2norm`` operation.  In eager mode
    the directive is a no-op — approximation is a compile-time concern.
    """
    attrs = {"begin": int(begin), "end": int(end), "stride": int(stride)}
    if isinstance(result, Value):
        if current_builder() is None:
            raise TracingError("red_perf used on a traced value outside of an active trace")
        _emit_no_result(Opcode.RED_PERF, [result], attrs)
        return result
    return result
