"""High-level HDC algorithmic stage primitives (Section 3.1 of the paper).

HDC++ provides three stage primitives — ``encoding_loop``, ``training_loop``
and ``inference_loop`` — that describe a whole algorithmic stage over an
entire dataset.  Each takes an *implementation function* describing the
per-sample algorithm with granular HDC primitives:

* when compiling for **CPU or GPU**, the back end executes the
  implementation function (per sample on the CPU, batched over the whole
  query hypermatrix on the GPU);
* when compiling for an **HDC accelerator** (digital ASIC / ReRAM), the
  stage is lowered to the accelerator's coarse-grain functional interface
  and the implementation function is ignored — the device implements its
  own fixed encoding / training / inference algorithms.

This split is exactly the design of the paper: it makes whole applications
portable across CPUs, GPUs and accelerators while letting accelerators
consume coarse-grained operations they can actually execute.

The implementation function can be either a :class:`TracedFunction` defined
in the same program (preferred — it appears in the IR, so approximation
transforms apply to it) or an opaque Python callable executed eagerly by
CPU/GPU back ends (useful for data-dependent update rules, e.g. the
training update of HD-Classification).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy
from repro.hdcpp.program import TracedFunction, TracingError, Value, current_builder
from repro.hdcpp.types import float32
from repro.ir.ops import Opcode, infer_result_type

__all__ = ["encoding_loop", "training_loop", "inference_loop"]

ImplFunction = Union[TracedFunction, Callable]


def _impl_attrs(impl: ImplFunction, batch_impl: Optional[Callable] = None) -> dict:
    """Encode the implementation function references as op attributes.

    ``batch_impl`` — the optional whole-hypermatrix formulation of the
    same per-sample algorithm — is recorded alongside the per-row route,
    so traced programs carry both: batched back ends prefer the declared
    batched route (bit-identity gated against ``impl``), everything else
    ignores it.
    """
    if isinstance(impl, TracedFunction):
        attrs = {"impl": impl.name}
    elif callable(impl):
        attrs = {"impl_callable": impl}
    else:
        raise TracingError(
            f"stage implementation must be a traced function or callable, got {impl!r}"
        )
    if batch_impl is not None:
        if not callable(batch_impl):
            raise TracingError(f"stage batch_impl must be callable, got {batch_impl!r}")
        attrs["batch_impl"] = batch_impl
    return attrs


def _emit_stage(opcode: Opcode, operands: list[Value], attrs: dict) -> Value:
    builder = current_builder()
    if builder is None:
        raise TracingError(f"{opcode} requires an active trace")
    result_type = infer_result_type(opcode, [v.type for v in operands], attrs)
    return builder.emit(opcode, operands, attrs, result_type)


def encoding_loop(
    impl: ImplFunction,
    queries,
    encoder,
    encoded_dim: Optional[int] = None,
    element=float32,
    batch_impl: Optional[Callable] = None,
):
    """Apply HDC encoding over an entire dataset.

    Args:
        impl: Implementation function mapping one feature hypervector and
            the encoder hypermatrix to an encoded hypervector (used on
            CPU/GPU targets).
        queries: Hypermatrix of input feature vectors (one row per sample).
        encoder: Encoder hypermatrix, e.g. a random projection matrix.
        encoded_dim: Dimensionality of the encoded hypervectors; inferred
            from ``encoder`` (its row count) when omitted.
        element: Element type of the encoded hypermatrix.
        batch_impl: Optional whole-hypermatrix formulation of the same
            per-sample encoder, taking ``(queries, encoder)`` and
            returning one encoded row per sample.  Batched back ends
            prefer it under the boundary-row bit-identity gate.

    Returns:
        A hypermatrix of encoded hypervectors (one row per sample).
    """
    attrs = _impl_attrs(impl, batch_impl)
    if encoded_dim is not None:
        attrs["encoded_dim"] = int(encoded_dim)
    attrs["element"] = element
    if isinstance(queries, Value):
        return _emit_stage(Opcode.ENCODING_LOOP, [queries, encoder], attrs)
    return _eager_encoding_loop(impl, queries, encoder)


def inference_loop(
    impl: ImplFunction,
    queries,
    classes,
    encoder=None,
    batch_impl: Optional[Callable] = None,
):
    """Apply HDC inference over an entire dataset.

    ``queries`` are the (already encoded or raw, depending on the chosen
    implementation function) input vectors to classify and ``classes``
    contains one representative hypervector per class.  The result is an
    index vector with one predicted label per query.

    ``encoder`` optionally passes the encoder hypermatrix (e.g. the random
    projection matrix) through to the implementation function; on the HDC
    accelerators it is what gets programmed into the device's base memory,
    so the same source line serves every target.

    ``batch_impl`` optionally declares the whole-hypermatrix formulation
    of the same search, taking ``(queries, classes[, encoder])`` and
    returning one label per query; batched back ends prefer it under the
    boundary-row bit-identity gate.
    """
    attrs = _impl_attrs(impl, batch_impl)
    if isinstance(queries, Value):
        operands = [queries, classes]
        if encoder is not None:
            operands.append(encoder)
            attrs["has_encoder"] = True
        return _emit_stage(Opcode.INFERENCE_LOOP, operands, attrs)
    return _eager_inference_loop(impl, queries, classes, encoder)


def training_loop(
    impl: ImplFunction,
    queries,
    labels,
    classes,
    epochs: int = 1,
    encoder=None,
    batch_impl: Optional[Callable] = None,
):
    """Apply HDC training over an entire dataset for ``epochs`` epochs.

    ``impl`` implements one iteration of training given a single data point
    (query hypervector, integer label and the current class hypermatrix) and
    returns the updated class hypermatrix.  The stage result is the trained
    class hypermatrix.  ``encoder`` behaves as in :func:`inference_loop`.

    ``batch_impl`` optionally supplies a mini-batched formulation of the
    same update rule, taking ``(queries_batch, labels_batch, classes[,
    encoder])`` and returning the updated class hypermatrix.  Back ends
    whose stage lowering is batched (the GPU) use it to train one mini-batch
    per library call — the exact structure of the hand-written CUDA
    baselines — while the CPU back end and the accelerators ignore it.
    """
    attrs = _impl_attrs(impl, batch_impl)
    attrs["epochs"] = int(epochs)
    if isinstance(queries, Value):
        operands = [queries, labels, classes]
        if encoder is not None:
            operands.append(encoder)
            attrs["has_encoder"] = True
        return _emit_stage(Opcode.TRAINING_LOOP, operands, attrs)
    return _eager_training_loop(impl, queries, labels, classes, epochs, encoder)


# ---------------------------------------------------------------------------
# Eager execution (host-side prototyping path)
# ---------------------------------------------------------------------------


def _require_callable(impl: ImplFunction, stage: str) -> Callable:
    if isinstance(impl, TracedFunction):
        raise TracingError(
            f"eager {stage} requires a Python callable implementation; "
            "traced implementation functions are executed by compiled programs"
        )
    return impl


def _eager_encoding_loop(impl, queries, encoder):
    impl = _require_callable(impl, "encoding_loop")
    queries_hm = queries if isinstance(queries, HyperMatrix) else HyperMatrix(as_numpy(queries))
    rows = [as_numpy(impl(queries_hm.row(i), encoder)) for i in range(queries_hm.rows)]
    out = np.stack(rows)
    element = float32
    first = impl(queries_hm.row(0), encoder)
    if isinstance(first, (HyperVector, HyperMatrix)):
        element = first.element
    return HyperMatrix(out, element)


def _eager_inference_loop(impl, queries, classes, encoder=None):
    impl = _require_callable(impl, "inference_loop")
    queries_hm = queries if isinstance(queries, HyperMatrix) else HyperMatrix(as_numpy(queries))
    labels = []
    for i in range(queries_hm.rows):
        args = (queries_hm.row(i), classes) if encoder is None else (queries_hm.row(i), classes, encoder)
        labels.append(int(impl(*args)))
    return np.asarray(labels, dtype=np.int64)


def _eager_training_loop(impl, queries, labels, classes, epochs: int, encoder=None):
    impl = _require_callable(impl, "training_loop")
    queries_hm = queries if isinstance(queries, HyperMatrix) else HyperMatrix(as_numpy(queries))
    labels_arr = np.asarray(labels, dtype=np.int64)
    current = classes
    for _ in range(int(epochs)):
        for i in range(queries_hm.rows):
            if encoder is None:
                current = impl(queries_hm.row(i), int(labels_arr[i]), current)
            else:
                current = impl(queries_hm.row(i), int(labels_arr[i]), current, encoder)
    return current
