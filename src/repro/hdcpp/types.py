"""Type system for the HDC++ embedded DSL.

The paper's HDC++ language (Section 3) parameterizes every primitive by an
element type and by the dimensionality of the involved hypervectors and
hypermatrices.  This module defines:

* :class:`ElementType` — the scalar element types supported by HDC++
  (``int8`` through ``int64``, ``float``, ``double``) plus the 1-bit
  *bipolar* type produced by the automatic-binarization transform
  (Section 4.2 of the paper).
* :class:`HyperVectorType`, :class:`HyperMatrixType`, :class:`ScalarType`,
  :class:`IndexVectorType` — the shaped types that flow along dataflow
  edges in HPVM-HDC IR.

These types are deliberately simple, hashable value objects: the frontend,
the IR, the transforms, and every back end all share them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ElementType",
    "int8",
    "int16",
    "int32",
    "int64",
    "float32",
    "float64",
    "binary",
    "ELEMENT_TYPES",
    "element_type_from_name",
    "HDType",
    "ScalarType",
    "IndexType",
    "HyperVectorType",
    "HyperMatrixType",
    "IndexVectorType",
    "hv",
    "hm",
    "scalar",
]


@dataclass(frozen=True)
class ElementType:
    """A scalar element type usable inside hypervectors and hypermatrices.

    Attributes:
        name: Canonical HDC++ name (``"float"``, ``"int8_t"``, ``"bit"`` ...).
        bits: Storage width in bits of a single element.  The bipolar
            ``binary`` type reports 1 bit even though the unpacked NumPy
            representation uses ``int8`` — back ends that support bit
            packing exploit this (see ``repro.kernels.binary``).
        is_float: Whether the element is a floating point type.
        is_binary: Whether the element is the 1-bit bipolar type produced by
            automatic binarization; values are restricted to ``{+1, -1}``.
    """

    name: str
    bits: int
    is_float: bool = False
    is_binary: bool = False

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used to *store* elements of this type.

        The bipolar 1-bit type is stored unpacked as ``int8`` holding +1/-1;
        packed representations are an internal detail of binary kernels.
        """
        if self.is_binary:
            return np.dtype(np.int8)
        if self.is_float:
            return np.dtype(np.float32) if self.bits == 32 else np.dtype(np.float64)
        return np.dtype(f"int{self.bits}")

    @property
    def bytes_per_element(self) -> float:
        """Logical storage cost per element in bytes (1/8 for binary)."""
        return self.bits / 8.0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ElementType({self.name})"


int8 = ElementType("int8_t", 8)
int16 = ElementType("int16_t", 16)
int32 = ElementType("int32_t", 32)
int64 = ElementType("int64_t", 64)
float32 = ElementType("float", 32, is_float=True)
float64 = ElementType("double", 64, is_float=True)
#: 1-bit bipolar type introduced by automatic binarization (Section 4.2).
binary = ElementType("bit", 1, is_float=False, is_binary=True)

ELEMENT_TYPES = {
    t.name: t for t in (int8, int16, int32, int64, float32, float64, binary)
}
# Friendly aliases accepted by :func:`element_type_from_name`.
_ALIASES = {
    "int8": int8,
    "int16": int16,
    "int32": int32,
    "int64": int64,
    "float32": float32,
    "float": float32,
    "float64": float64,
    "double": float64,
    "bit": binary,
    "binary": binary,
    "bipolar": binary,
}


def element_type_from_name(name: str) -> ElementType:
    """Resolve an element type from its HDC++ name or a common alias."""
    if name in ELEMENT_TYPES:
        return ELEMENT_TYPES[name]
    if name in _ALIASES:
        return _ALIASES[name]
    raise KeyError(f"unknown HDC++ element type: {name!r}")


class HDType:
    """Base class for all shaped HDC++ / HPVM-HDC IR types."""

    element: ElementType

    @property
    def shape(self) -> tuple[int, ...]:
        raise NotImplementedError

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def num_bytes(self) -> float:
        """Logical size in bytes (used for data-movement accounting)."""
        return self.num_elements * self.element.bytes_per_element

    def with_element(self, element: ElementType) -> "HDType":
        """Return a copy of this type with a different element type."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarType(HDType):
    """A single scalar value of a given element type."""

    element: ElementType

    @property
    def shape(self) -> tuple[int, ...]:
        return ()

    def with_element(self, element: ElementType) -> "ScalarType":
        return ScalarType(element)

    def __repr__(self) -> str:
        return f"scalar<{self.element.name}>"


@dataclass(frozen=True)
class IndexType(HDType):
    """An integer index (result of ``arg_min`` / ``arg_max`` on a vector)."""

    element: ElementType = int64

    @property
    def shape(self) -> tuple[int, ...]:
        return ()

    def with_element(self, element: ElementType) -> "IndexType":
        return IndexType(element)

    def __repr__(self) -> str:
        return "index"


@dataclass(frozen=True)
class HyperVectorType(HDType):
    """``hypervector<DIM, ELEM>`` — a 1-D high dimensional vector."""

    dim: int
    element: ElementType = float32

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.dim,)

    def with_element(self, element: ElementType) -> "HyperVectorType":
        return HyperVectorType(self.dim, element)

    def __repr__(self) -> str:
        return f"hypervector<{self.dim}, {self.element.name}>"


@dataclass(frozen=True)
class HyperMatrixType(HDType):
    """``hypermatrix<ROWS, COLS, ELEM>`` — a 2-D stack of hypervectors."""

    rows: int
    cols: int
    element: ElementType = float32

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.rows, self.cols)

    def with_element(self, element: ElementType) -> "HyperMatrixType":
        return HyperMatrixType(self.rows, self.cols, element)

    @property
    def row_type(self) -> HyperVectorType:
        """The hypervector type of a single row of this hypermatrix."""
        return HyperVectorType(self.cols, self.element)

    def __repr__(self) -> str:
        return f"hypermatrix<{self.rows}, {self.cols}, {self.element.name}>"


@dataclass(frozen=True)
class IndexVectorType(HDType):
    """A vector of integer indices (result of per-row ``arg_min``/``arg_max``)."""

    dim: int
    element: ElementType = int64

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.dim,)

    def with_element(self, element: ElementType) -> "IndexVectorType":
        return IndexVectorType(self.dim, element)

    def __repr__(self) -> str:
        return f"indexvector<{self.dim}>"


def hv(dim: int, element: ElementType = float32) -> HyperVectorType:
    """Shorthand constructor mirroring HDC++'s ``hypervector<DIM>``."""
    return HyperVectorType(int(dim), element)


def hm(rows: int, cols: int, element: ElementType = float32) -> HyperMatrixType:
    """Shorthand constructor mirroring HDC++'s ``hypermatrix<ROWS, COLS>``."""
    return HyperMatrixType(int(rows), int(cols), element)


def scalar(element: ElementType = float32) -> ScalarType:
    """Shorthand constructor for a scalar type."""
    return ScalarType(element)
