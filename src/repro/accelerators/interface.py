"""The coarse-grain functional interface of the HDC accelerators.

Both the digital HDC ASIC and the ReRAM accelerator expose the same style
of host-facing interface (Section 2.2 / Listing 6 of the paper): functions
for device configuration, data movement, and coarse-grain HDC operations
("run one iteration of training given a single data point", "infer the
label for a single feature vector given pre-programmed class
hypervectors").  HPVM-HDC lowers the HDC++ *stage* primitives to exactly
these calls.

:class:`HDCAcceleratorDevice` defines the interface plus shared accounting
(device-only latency, host-link transfer time at the 10 kbps FPGA bridge of
the ASIC setup, energy).  Concrete devices implement the actual encoding /
training / inference algorithms and their timing models.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["AcceleratorConfig", "DeviceCounters", "HDCAcceleratorDevice", "DeviceError"]


class DeviceError(RuntimeError):
    """Raised when the accelerator functional interface is misused."""


@dataclass(frozen=True)
class AcceleratorConfig:
    """Device configuration written by ``initialize_device`` (Listing 6).

    Attributes:
        dimension: Hypervector dimensionality D programmed into the device.
        features: Input feature vector length F.
        classes: Number of class hypervectors K.
        similarity: Similarity metric used by inference; both devices
            implement Hamming distance in hardware.
    """

    dimension: int
    features: int
    classes: int
    similarity: str = "hamming"


@dataclass
class DeviceCounters:
    """Accumulated accounting for one device session."""

    device_seconds: float = 0.0
    transfer_seconds: float = 0.0
    bytes_to_device: float = 0.0
    bytes_from_device: float = 0.0
    energy_joules: float = 0.0
    encodes: int = 0
    inferences: int = 0
    train_iterations: int = 0

    def reset(self) -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, f.default)

    def merge(self, other: "DeviceCounters") -> None:
        """Fold another set of counters into this one, field by field."""
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "DeviceCounters":
        return dataclasses.replace(self)

    def delta(self, since: "DeviceCounters") -> "DeviceCounters":
        """Counters accumulated after the ``since`` snapshot was taken."""
        return DeviceCounters(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in dataclasses.fields(self)
            }
        )


class HDCAcceleratorDevice:
    """Base class for the HDC accelerator simulators.

    The functional interface follows Listing 6 of the paper::

        initialize_device(config)
        allocate_base_mem(random_projection)   # encoder / base hypervectors
        allocate_class_mem(classes)            # class hypervectors
        allocate_feature_mem(features)         # one input feature vector
        execute_encode()                       # encode the staged features
        execute_retrain(label)                 # one training iteration
        execute_inference()                    # classify the staged features
        read_class_mem()                       # copy class hypervectors back

    Subclasses must implement the ``_encode``, ``_train_step`` and
    ``_infer`` hooks together with their timing models (``_encode_time``
    etc.).  All data movement over the host link is accounted through
    :meth:`_transfer_to_device` / :meth:`_transfer_from_device`.
    """

    #: Host link bandwidth in bits per second.  The taped-out ASIC talks to
    #: its ARM host through a 10 kbps FPGA bridge (Section 5.2).
    host_link_bps: float = 10e3

    #: Class-memory capacity in rows (class hypervectors), or ``None`` for
    #: unbounded.  Real devices hold the class memory in a fixed on-chip
    #: bank (the ASIC's class SRAM, the ReRAM macro's crossbar rows); a
    #: class memory larger than the bank cannot stay resident — the host
    #: must re-stream it per execution round.  :class:`DeviceSession`
    #: consults this to decide whether residency-based transfer elision is
    #: possible at all; the functional simulators still *execute*
    #: oversized memories (streaming is functionally a reload), they just
    #: never count them resident.
    class_mem_capacity_rows: Optional[int] = None

    def __init__(self) -> None:
        self.config: Optional[AcceleratorConfig] = None
        self.counters = DeviceCounters()
        self._base_mem: Optional[np.ndarray] = None
        self._class_mem: Optional[np.ndarray] = None
        self._feature_mem: Optional[np.ndarray] = None
        self._encoded_mem: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ config --
    def initialize_device(self, config: AcceleratorConfig) -> None:
        """Configure the device and clear its on-chip state."""
        self.config = config
        self.counters.reset()
        self._base_mem = None
        self._class_mem = None
        self._feature_mem = None
        self._encoded_mem = None

    def _require_config(self) -> AcceleratorConfig:
        if self.config is None:
            raise DeviceError("initialize_device must be called before any other operation")
        return self.config

    # ----------------------------------------------------------- data movement --
    def allocate_base_mem(self, base: np.ndarray) -> None:
        """Load the encoder (random projection / base hypervectors)."""
        self._require_config()
        self._base_mem = np.asarray(base)
        self._transfer_to_device(self._base_mem.size * self._element_bytes(self._base_mem))

    def allocate_class_mem(self, classes: np.ndarray) -> None:
        """Load the class hypervectors into on-chip class memory."""
        config = self._require_config()
        classes = np.asarray(classes)
        if classes.shape[0] != config.classes:
            raise DeviceError(
                f"class memory expects {config.classes} class hypervectors, got {classes.shape[0]}"
            )
        self._class_mem = classes.astype(np.float32, copy=True)
        self._transfer_to_device(classes.size * self._element_bytes(classes))

    def allocate_feature_mem(self, features: np.ndarray) -> None:
        """Stage one input feature vector in the device input buffer."""
        config = self._require_config()
        features = np.asarray(features)
        if features.shape[-1] != config.features:
            raise DeviceError(
                f"feature buffer expects {config.features} features, got {features.shape[-1]}"
            )
        self._feature_mem = features
        self._transfer_to_device(features.size * self._element_bytes(features))

    def read_class_mem(self) -> np.ndarray:
        """Copy the class hypervectors back to the host."""
        self._require_config()
        if self._class_mem is None:
            raise DeviceError("class memory has not been programmed")
        self._transfer_from_device(self._class_mem.size * 4)
        return np.array(self._class_mem, copy=True)

    def allocate_encoded_mem(self, encoded: np.ndarray) -> None:
        """Stage an already-encoded hypervector in the encoded-HV buffer.

        Both accelerators keep encoded hypervectors in an on-chip buffer
        between their encoder and their Hamming unit (Figure 1 of the
        paper); this entry point lets the host feed that buffer directly so
        that pre-encoded data (e.g. the encodings produced by a previous
        ``encoding_loop`` offload) can be classified without re-encoding.
        """
        config = self._require_config()
        encoded = np.asarray(encoded)
        if encoded.shape[-1] != config.dimension:
            raise DeviceError(
                f"encoded buffer expects dimension {config.dimension}, got {encoded.shape[-1]}"
            )
        self._encoded_mem = encoded
        self._transfer_to_device(encoded.size * self._element_bytes(encoded))

    # ------------------------------------------------------- coarse operations --
    def execute_encode(self) -> np.ndarray:
        """Encode the staged feature vector into a hypervector."""
        self._require_staged()
        encoded = self._encode(self._feature_mem)
        seconds = self._encode_time()
        self._account(seconds)
        self.counters.encodes += 1
        return encoded

    def execute_retrain(self, label: int) -> None:
        """Run one training iteration for the staged feature vector."""
        self._require_staged(need_classes=True)
        self._train_step(self._feature_mem, int(label))
        seconds = self._train_time()
        self._account(seconds)
        self.counters.train_iterations += 1

    def execute_inference(self) -> int:
        """Classify the staged feature vector against the class memory."""
        self._require_staged(need_classes=True)
        label, seconds = self._infer(self._feature_mem)
        self._account(seconds)
        self.counters.inferences += 1
        # The predicted label travels back over the host link.
        self._transfer_from_device(4)
        return int(label)

    def execute_inference_encoded(self) -> int:
        """Classify the staged *pre-encoded* hypervector (Hamming unit only)."""
        self._require_config()
        if self._encoded_mem is None:
            raise DeviceError("allocate_encoded_mem must be called before encoded inference")
        if self._class_mem is None:
            raise DeviceError("allocate_class_mem must be called before execution")
        label, seconds = self._infer_encoded(self._encoded_mem)
        self._account(seconds)
        self.counters.inferences += 1
        self._transfer_from_device(4)
        return int(label)

    # ------------------------------------------------------------------- hooks --
    def _encode(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _train_step(self, features: np.ndarray, label: int) -> None:
        raise NotImplementedError

    def _infer(self, features: np.ndarray) -> tuple[int, float]:
        """Return ``(label, device_seconds)`` for one inference."""
        raise NotImplementedError

    def _infer_encoded(self, encoded: np.ndarray) -> tuple[int, float]:
        """Return ``(label, device_seconds)`` for one pre-encoded inference."""
        raise NotImplementedError

    def _encode_time(self) -> float:
        raise NotImplementedError

    def _train_time(self) -> float:
        raise NotImplementedError

    #: Average device power in watts, used for the energy accounting.
    device_power_watts: float = 0.1

    # --------------------------------------------------------------- accounting --
    def _account(self, device_seconds: float) -> None:
        self.counters.device_seconds += device_seconds
        self.counters.energy_joules += device_seconds * self.device_power_watts

    def _transfer_to_device(self, num_bytes: float) -> None:
        self.counters.bytes_to_device += num_bytes
        self.counters.transfer_seconds += (num_bytes * 8.0) / self.host_link_bps

    def _transfer_from_device(self, num_bytes: float) -> None:
        self.counters.bytes_from_device += num_bytes
        self.counters.transfer_seconds += (num_bytes * 8.0) / self.host_link_bps

    def _require_staged(self, need_classes: bool = False) -> None:
        self._require_config()
        if self._base_mem is None:
            raise DeviceError("allocate_base_mem must be called before execution")
        if self._feature_mem is None:
            raise DeviceError("allocate_feature_mem must be called before execution")
        if need_classes and self._class_mem is None:
            raise DeviceError("allocate_class_mem must be called before execution")

    @staticmethod
    def _element_bytes(array: np.ndarray) -> float:
        return float(array.dtype.itemsize)
