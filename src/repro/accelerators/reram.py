"""Simulator of the ReRAM-based HDC accelerator (Section 2.2 of the paper).

The device (Xu et al., "FSL-HD") accelerates HDC with a large resistive-RAM
macro used as an in-memory compute array:

* **Tensorized encoding** — a more energy-efficient variant of random
  projection in which the projection matrix is the Kronecker product of two
  much smaller matrices, so only the factors need to be stored in the
  1024x1024 ReRAM macro.
* **In-memory Hamming unit with progressive computation** — Hamming
  distances between the encoded query and the candidate class hypervectors
  are accumulated chunk by chunk; once the remaining (uncomputed) elements
  can no longer change the relative ranking of the best candidate, the
  computation terminates early.
* **Summation-based one-shot training** — class hypervectors are the
  bundled (element-wise summed) encodings of their training samples.

The paper evaluated this accelerator through a simulator with timing and
energy parameters extracted from commercial 40 nm SRAM/ReRAM macros; this
module is the equivalent simulator for the reproduction, so the methodology
matches the original evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerators.interface import AcceleratorConfig, HDCAcceleratorDevice

__all__ = ["ReRAMParameters", "ReRAMAccelerator"]


@dataclass(frozen=True)
class ReRAMParameters:
    """Timing/energy parameters of the ReRAM accelerator model.

    ``macro_rows`` x ``macro_cols`` is the size of the ReRAM crossbar
    (1024x1024 in the paper's Figure 1).  One in-memory operation activates
    an entire macro row per cycle, which is what gives the device its large
    throughput advantage over the digital ASIC's lane-limited pipeline.
    """

    clock_hz: float = 100e6
    macro_rows: int = 1024
    macro_cols: int = 1024
    #: Hamming chunk width processed per progressive step (elements).
    hamming_chunk: int = 1024
    #: Latency of one in-memory activation burst (analog read, ADC sample
    #: and accumulate), in cycles.
    row_activation_cycles: int = 20
    #: Energy per activated ReRAM cell, in picojoules.
    energy_per_cell_pj: float = 0.02
    #: On-chip buffer size in bits (256 kb in Figure 1).
    buffer_bits: int = 256 * 1024
    host_link_bps: float = 1e6


class ReRAMAccelerator(HDCAcceleratorDevice):
    """Functional + timing simulator of the ReRAM HDC accelerator."""

    def __init__(self, params: ReRAMParameters | None = None, seed: int = 0x5EED):
        super().__init__()
        self.params = params or ReRAMParameters()
        self.host_link_bps = self.params.host_link_bps
        self.device_power_watts = 0.05
        self._seed = seed
        self._class_accumulators: np.ndarray | None = None
        self._factors: tuple[np.ndarray, np.ndarray] | None = None
        #: Fraction of the hypervector dimension actually visited by the
        #: progressive Hamming unit, averaged over inferences (for reports
        #: and the early-termination ablation benchmark).
        self.progressive_fraction_history: list[float] = []

    # ------------------------------------------------------------------ config --
    def initialize_device(self, config: AcceleratorConfig) -> None:
        super().initialize_device(config)
        self._class_accumulators = None
        self._factors = None
        self.progressive_fraction_history = []

    # --------------------------------------------------------- tensorized encode --
    @staticmethod
    def _factor_dims(dimension: int, features: int) -> tuple[int, int, int, int]:
        """Choose Kronecker factor shapes (d1 x f1) ⊗ (d2 x f2).

        ``d1 * d2 >= dimension`` and ``f1 * f2 >= features`` with factors as
        balanced as possible so both fit comfortably in the ReRAM macro.
        """
        d1 = int(np.ceil(np.sqrt(dimension)))
        d2 = int(np.ceil(dimension / d1))
        f1 = int(np.ceil(np.sqrt(features)))
        f2 = int(np.ceil(features / f1))
        return d1, d2, f1, f2

    def allocate_base_mem(self, base: np.ndarray) -> None:
        """Program the tensorized encoder.

        The host-provided projection matrix is only used as an entropy
        source: the device draws its two bipolar Kronecker factors from a
        deterministic generator so that the effective projection is
        reproducible across sessions, which is how the real device programs
        its encoder from a seed rather than storing a full D x F matrix.
        """
        config = self._require_config()
        base = np.asarray(base)
        super().allocate_base_mem(np.sign(base).astype(np.int8) if base.ndim else base)
        d1, d2, f1, f2 = self._factor_dims(config.dimension, config.features)
        rng = np.random.default_rng(self._seed)
        factor_a = (rng.integers(0, 2, size=(d1, f1)) * 2 - 1).astype(np.float32)
        factor_b = (rng.integers(0, 2, size=(d2, f2)) * 2 - 1).astype(np.float32)
        self._factors = (factor_a, factor_b)

    def allocate_class_mem(self, classes: np.ndarray) -> None:
        super().allocate_class_mem(classes)
        self._class_accumulators = np.asarray(classes, dtype=np.float32).copy()

    def read_class_mem(self) -> np.ndarray:
        self._class_mem = self._class_accumulators
        return super().read_class_mem()

    def _encode(self, features: np.ndarray) -> np.ndarray:
        config = self._require_config()
        assert self._factors is not None
        factor_a, factor_b = self._factors
        d1, d2 = factor_a.shape[0], factor_b.shape[0]
        f1, f2 = factor_a.shape[1], factor_b.shape[1]
        padded = np.zeros(f1 * f2, dtype=np.float32)
        padded[: config.features] = np.asarray(features, dtype=np.float32)
        # (A ⊗ B) @ x  ==  vec(B @ X @ A^T)  with X = reshape(x, f1, f2)
        x = padded.reshape(f1, f2)
        product = factor_b @ x.T @ factor_a.T  # (d2, d1)
        encoded = product.T.reshape(-1)[: config.dimension]
        return np.where(encoded >= 0, 1, -1).astype(np.int8)

    # ------------------------------------------------- progressive hamming unit --
    def _progressive_hamming(self, encoded: np.ndarray) -> tuple[np.ndarray, float]:
        """Accumulate Hamming distances chunk-by-chunk with early termination.

        Returns the (possibly partial) distances and the fraction of the
        hypervector dimension that was actually visited.
        """
        config = self._require_config()
        assert self._class_accumulators is not None
        bipolar_classes = np.where(self._class_accumulators >= 0, 1, -1).astype(np.int8)
        dim = config.dimension
        chunk = self.params.hamming_chunk
        distances = np.zeros(config.classes, dtype=np.float64)
        visited = 0
        for start in range(0, dim, chunk):
            stop = min(start + chunk, dim)
            distances += np.count_nonzero(
                bipolar_classes[:, start:stop] != encoded[None, start:stop], axis=1
            )
            visited = stop
            remaining = dim - visited
            order = np.argsort(distances)
            best, second = distances[order[0]], distances[order[1]] if len(order) > 1 else np.inf
            # Even if every remaining element favours the runner-up, it can
            # no longer overtake the current best candidate.
            if best + remaining < second:
                break
        fraction = visited / dim
        self.progressive_fraction_history.append(fraction)
        return distances, fraction

    def _train_step(self, features: np.ndarray, label: int) -> None:
        """Summation-based one-shot training: bundle the encoded sample."""
        assert self._class_accumulators is not None
        encoded = self._encode(features).astype(np.float32)
        self._class_accumulators[label] += encoded
        self._class_mem = self._class_accumulators

    def _infer(self, features: np.ndarray) -> tuple[int, float]:
        encoded = self._encode(features)
        label, hamming_seconds = self._infer_encoded(encoded)
        return label, self._encode_time() + hamming_seconds

    def _infer_encoded(self, encoded: np.ndarray) -> tuple[int, float]:
        encoded = np.where(np.asarray(encoded) >= 0, 1, -1).astype(np.int8)
        distances, fraction = self._progressive_hamming(encoded)
        return int(np.argmin(distances)), self._hamming_time(fraction)

    # ------------------------------------------------------------------ timing --
    def _encode_time(self) -> float:
        config = self._require_config()
        p = self.params
        d1, d2, f1, f2 = self._factor_dims(config.dimension, config.features)
        # The Kronecker trick turns the D x F projection into two small
        # matrix-vector products computed in memory: f1 activation bursts
        # against factor B followed by d2 bursts against factor A.
        activations = f1 + d2
        cycles = activations * p.row_activation_cycles
        return cycles / p.clock_hz

    def _hamming_time(self, fraction: float = 1.0) -> float:
        config = self._require_config()
        p = self.params
        visited = config.dimension * fraction
        chunks = int(np.ceil(visited / p.hamming_chunk))
        # The in-memory Hamming unit performs one activation burst per chunk
        # per candidate class hypervector.
        cycles = chunks * p.row_activation_cycles * max(1, config.classes)
        return cycles / p.clock_hz

    def _train_time(self) -> float:
        config = self._require_config()
        p = self.params
        update_cycles = config.dimension / p.macro_cols * p.row_activation_cycles
        return self._encode_time() + update_cycles / p.clock_hz

    # --------------------------------------------------------------- accounting --
    def _account(self, device_seconds: float) -> None:
        super()._account(device_seconds)
        config = self.config
        if config is not None:
            cells = self.params.macro_cols
            self.counters.energy_joules += cells * self.params.energy_per_cell_pj * 1e-12

    @property
    def mean_progressive_fraction(self) -> float:
        """Average visited fraction of the progressive Hamming unit."""
        if not self.progressive_fraction_history:
            return 1.0
        return float(np.mean(self.progressive_fraction_history))
