"""Simulator of the digital HDC ASIC (Section 2.2 of the paper).

The taped-out device (Yang et al., "FSL-HDnn", 40 nm) supports *cyclic
random projection* encoding and *pipelined Hamming distance* for both
training and inference, reaching 0.78 TOPS/W on its HDC module.  The chip
is attached to an ARM host through an FPGA bridge limited to roughly
10 kbps, so realistic deployments keep data resident on the device and the
evaluation of Figure 6 reports device-only latency.

This module reproduces the device functionally and with an analytical
timing/energy model:

* **Cyclic random projection.**  The host programs a single base projection
  row (plus the device's LFSR seed); row *i* of the effective projection
  matrix is the base row cyclically rotated by *i*.  The encoded
  hypervector is the sign of the projection product — exactly the behaviour
  HPVM-HDC relies on when it offloads ``encoding_loop``.
* **Pipelined Hamming distance.**  Class hypervectors are stored as
  bipolar vectors; inference streams the encoded query through a Hamming
  pipeline, one class per pipeline pass, with ``lanes`` elements compared
  per cycle.
* **Class updating.**  Training keeps integer accumulators per class and
  adds/subtracts the encoded hypervector on mispredictions (the standard
  HDC retraining rule); the bipolar class memory used for inference is the
  sign of the accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerators.interface import AcceleratorConfig, HDCAcceleratorDevice

__all__ = ["DigitalASICParameters", "DigitalHDCASIC"]


@dataclass(frozen=True)
class DigitalASICParameters:
    """Timing and energy parameters of the digital HDC ASIC model.

    The defaults are anchored to the published figures of the device: a
    40 nm design running at a few hundred MHz whose HDC module achieves
    0.78 TOPS/W.  ``encode_lanes`` / ``hamming_lanes`` model the number of
    multiply-accumulate / compare lanes working in parallel per cycle.
    """

    clock_hz: float = 200e6
    encode_lanes: int = 512
    hamming_lanes: int = 1024
    update_lanes: int = 512
    pipeline_fill_cycles: int = 64
    tops_per_watt: float = 0.78
    host_link_bps: float = 10e3
    #: On-chip class-memory bank size in rows; ``None`` models an
    #: unbounded bank (the pre-PR-9 behaviour).  Class memories above the
    #: bank size cannot stay resident between executions — the host
    #: re-streams them per round, which is exactly the data-movement wall
    #: that sharding across devices exists to break.
    class_mem_rows: "int | None" = None

    @property
    def watts(self) -> float:
        """Average power implied by lane throughput and TOPS/W."""
        ops_per_second = self.hamming_lanes * self.clock_hz
        return ops_per_second / (self.tops_per_watt * 1e12)


class DigitalHDCASIC(HDCAcceleratorDevice):
    """Functional + timing simulator of the digital HDC ASIC."""

    def __init__(self, params: DigitalASICParameters | None = None, seed: int = 0xA51C):
        super().__init__()
        self.params = params or DigitalASICParameters()
        self.host_link_bps = self.params.host_link_bps
        self.device_power_watts = self.params.watts
        self.class_mem_capacity_rows = self.params.class_mem_rows
        self._seed = seed
        self._class_accumulators: np.ndarray | None = None
        self._base_row: np.ndarray | None = None
        self._projection_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ config --
    def initialize_device(self, config: AcceleratorConfig) -> None:
        super().initialize_device(config)
        self._class_accumulators = None
        self._base_row = None
        self._projection_cache = None

    def allocate_base_mem(self, base: np.ndarray) -> None:
        """Program the cyclic projection base row.

        The host may pass a full random projection matrix (as generated for
        CPU/GPU execution); the device only stores its first row and derives
        the remaining rows cyclically — this is the hardware restriction that
        makes the encoder cheap to store on chip.
        """
        base = np.asarray(base)
        row = base[0] if base.ndim == 2 else base
        super().allocate_base_mem(np.sign(row).astype(np.int8))
        self._base_row = np.where(np.asarray(self._base_mem) >= 0, 1, -1).astype(np.int8)
        self._projection_cache = None

    def allocate_class_mem(self, classes: np.ndarray) -> None:
        super().allocate_class_mem(classes)
        # Class memory is kept as integer accumulators; inference uses sign().
        self._class_accumulators = np.asarray(classes, dtype=np.float32).copy()

    def read_class_mem(self) -> np.ndarray:
        self._class_mem = self._class_accumulators
        return super().read_class_mem()

    # ----------------------------------------------------------------- compute --
    def _cyclic_projection(self, features: np.ndarray) -> np.ndarray:
        """Encode with the cyclic random projection unit."""
        config = self._require_config()
        assert self._base_row is not None
        features = np.asarray(features, dtype=np.float32)
        # Row i of the projection is the base row rotated by i; the product
        # against a fixed feature vector is a circular correlation, computed
        # here with a cached expansion of the cyclic matrix (the hardware
        # streams it through MAC lanes without materializing it).
        if self._projection_cache is None:
            dim, n_features = config.dimension, config.features
            base = self._base_row[:n_features].astype(np.float32)
            shifts = np.arange(dim) % n_features
            idx = (np.arange(n_features)[None, :] + shifts[:, None]) % n_features
            self._projection_cache = base[idx]
        return self._projection_cache @ features

    def _encode(self, features: np.ndarray) -> np.ndarray:
        raw = self._cyclic_projection(features)
        return np.where(raw >= 0, 1, -1).astype(np.int8)

    def _train_step(self, features: np.ndarray, label: int) -> None:
        assert self._class_accumulators is not None
        encoded = self._encode(features).astype(np.float32)
        bipolar_classes = np.where(self._class_accumulators >= 0, 1, -1).astype(np.float32)
        distances = np.count_nonzero(bipolar_classes != encoded[None, :], axis=1)
        predicted = int(np.argmin(distances))
        # Bundle into the true class, and correct the mispredicted class.
        self._class_accumulators[label] += encoded
        if predicted != label:
            self._class_accumulators[predicted] -= encoded
        self._class_mem = self._class_accumulators

    def _infer(self, features: np.ndarray) -> tuple[int, float]:
        encoded = self._encode(features).astype(np.float32)
        label, hamming_seconds = self._infer_encoded(encoded)
        return label, self._encode_time() + hamming_seconds

    def _infer_encoded(self, encoded: np.ndarray) -> tuple[int, float]:
        assert self._class_accumulators is not None
        encoded = np.where(np.asarray(encoded) >= 0, 1, -1).astype(np.float32)
        bipolar_classes = np.where(self._class_accumulators >= 0, 1, -1).astype(np.float32)
        distances = np.count_nonzero(bipolar_classes != encoded[None, :], axis=1)
        return int(np.argmin(distances)), self._hamming_time()

    # ------------------------------------------------------------------ timing --
    def _encode_time(self) -> float:
        config = self._require_config()
        p = self.params
        macs = config.dimension * config.features
        cycles = macs / p.encode_lanes + p.pipeline_fill_cycles
        return cycles / p.clock_hz

    def _hamming_time(self) -> float:
        config = self._require_config()
        p = self.params
        comparisons = config.dimension * config.classes
        cycles = comparisons / p.hamming_lanes + p.pipeline_fill_cycles * config.classes
        return cycles / p.clock_hz

    def _update_time(self) -> float:
        config = self._require_config()
        p = self.params
        cycles = 2 * config.dimension / p.update_lanes + p.pipeline_fill_cycles
        return cycles / p.clock_hz

    def _train_time(self) -> float:
        return self._encode_time() + self._hamming_time() + self._update_time()
