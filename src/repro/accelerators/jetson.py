"""Device-only latency model of an NVIDIA Jetson AGX Orin class edge GPU.

Figure 6 of the paper compares the two HDC accelerators against the same
HDC++ applications compiled for an NVIDIA Jetson AGX Orin board (Ampere
GPU, 2048 CUDA cores, 64 tensor cores) — the representative GPU available
at the edge, which is the deployment target of the accelerators.  Because
the comparison is *device-only* (the ASIC's 10 kbps host link and the
ReRAM simulator's lack of a host model make end-to-end numbers
meaningless), what is needed from the Jetson is a latency model of the HDC
primitive work: encoding GEMMs, similarity computations and class updates,
including per-kernel launch overhead, which dominates for the small
per-sample kernels HDC produces.

The model is analytical: the achieved throughput on the small, skinny
matrices typical of HDC (one sample at a time, as the accelerators process
them) is far below peak, which the ``efficiency`` factor captures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JetsonParameters", "JetsonOrinModel"]


@dataclass(frozen=True)
class JetsonParameters:
    """Performance parameters of the edge-GPU latency model.

    Attributes:
        peak_flops: Peak FP32 throughput of the Ampere GPU (~5.3 TFLOPS for
            the 2048-core Orin configuration).
        efficiency: Fraction of peak achieved on per-sample HDC kernels
            (skinny GEMV-like shapes keep utilization low).
        kernel_launch_seconds: Fixed overhead per kernel launch.
        memory_bandwidth: Device memory bandwidth in bytes/second.
    """

    peak_flops: float = 5.3e12
    efficiency: float = 0.05
    kernel_launch_seconds: float = 8e-6
    memory_bandwidth: float = 200e9


class JetsonOrinModel:
    """Analytical device-only latency model for HDC stages on a Jetson Orin."""

    def __init__(self, params: JetsonParameters | None = None):
        self.params = params or JetsonParameters()

    @property
    def _effective_flops(self) -> float:
        return self.params.peak_flops * self.params.efficiency

    def _kernel_time(self, flops: float, bytes_moved: float) -> float:
        compute = flops / self._effective_flops
        memory = bytes_moved / self.params.memory_bandwidth
        return self.params.kernel_launch_seconds + max(compute, memory)

    # -- per-sample HDC stages -------------------------------------------------------
    def encode_time(self, dimension: int, features: int) -> float:
        """Random projection encoding of one sample: a (D x F) GEMV."""
        flops = 2.0 * dimension * features
        bytes_moved = 4.0 * (dimension * features + features + dimension)
        return self._kernel_time(flops, bytes_moved)

    def similarity_time(self, dimension: int, classes: int) -> float:
        """Similarity of one encoded sample against every class hypervector."""
        flops = 2.0 * dimension * classes
        bytes_moved = 4.0 * (dimension * classes + dimension + classes)
        # similarity kernel + an argmin reduction kernel
        return self._kernel_time(flops, bytes_moved) + self.params.kernel_launch_seconds

    def update_time(self, dimension: int) -> float:
        """Class hypervector update for one training sample."""
        flops = 2.0 * dimension
        bytes_moved = 4.0 * 3 * dimension
        return self._kernel_time(flops, bytes_moved)

    def inference_time(self, dimension: int, features: int, classes: int) -> float:
        """Encode + similarity + argmin for one sample."""
        return self.encode_time(dimension, features) + self.similarity_time(dimension, classes)

    def train_iteration_time(self, dimension: int, features: int, classes: int) -> float:
        """One retraining iteration (encode, similarity, conditional update)."""
        return self.inference_time(dimension, features, classes) + self.update_time(dimension)

    # -- whole stages ---------------------------------------------------------------
    def encoding_stage_time(self, samples: int, dimension: int, features: int) -> float:
        return samples * self.encode_time(dimension, features)

    def inference_stage_time(self, samples: int, dimension: int, features: int, classes: int) -> float:
        return samples * self.inference_time(dimension, features, classes)

    def training_stage_time(
        self, samples: int, epochs: int, dimension: int, features: int, classes: int
    ) -> float:
        return samples * epochs * self.train_iteration_time(dimension, features, classes)
