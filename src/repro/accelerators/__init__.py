"""Device simulators for the HDC accelerators targeted by HPVM-HDC.

The paper compiles applications to two custom HDC accelerators
(Section 2.2): a taped-out 40 nm digital HDC ASIC and a ReRAM-based HDC
accelerator, plus it compares them against an NVIDIA Jetson AGX Orin edge
GPU (Figure 6).  None of this hardware is available offline, so this
package provides functional + timing simulators:

* :mod:`repro.accelerators.interface` — the coarse-grain functional
  interface both accelerators expose to the host (Listing 6 of the paper);
* :mod:`repro.accelerators.digital_asic` — the digital ASIC: cyclic
  random-projection encoding, pipelined Hamming distance, class updating;
* :mod:`repro.accelerators.reram` — the ReRAM accelerator: tensorized
  (Kronecker) encoding, in-memory progressive Hamming distance with early
  termination, one-shot training;
* :mod:`repro.accelerators.jetson` — a device-only latency model of an
  Ampere-class edge GPU used as the Figure 6 comparison point.

The ASIC was measured on silicon in the paper while the ReRAM device was
itself simulated; here both are simulated with timing/energy parameters
anchored to the published figures (0.78 TOPS/W for the ASIC HDC module, a
10 kbps host link, 40 nm macro parameters for ReRAM).
"""

from repro.accelerators.digital_asic import DigitalHDCASIC, DigitalASICParameters
from repro.accelerators.interface import (
    AcceleratorConfig,
    DeviceCounters,
    HDCAcceleratorDevice,
)
from repro.accelerators.jetson import JetsonOrinModel, JetsonParameters
from repro.accelerators.reram import ReRAMAccelerator, ReRAMParameters

__all__ = [
    "AcceleratorConfig",
    "DeviceCounters",
    "HDCAcceleratorDevice",
    "DigitalHDCASIC",
    "DigitalASICParameters",
    "ReRAMAccelerator",
    "ReRAMParameters",
    "JetsonOrinModel",
    "JetsonParameters",
]
