"""Pytest configuration for the repository.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. a fresh checkout without ``pip install -e .``), so that
``pytest tests/`` and ``pytest benchmarks/`` work out of the box.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
