"""Serving quickstart: keep a compiled HDC program warm behind a server.

The one-shot flow (``examples/quickstart.py``) traces, compiles, runs and
exits.  This example shows the serving runtime instead:

1. train HD-Classification offline on the ISOLET-like dataset;
2. package the trained state as a :class:`~repro.serving.Servable`;
3. register it with an :class:`~repro.serving.InferenceServer` whose worker
   pool spans the CPU (batched host kernels) and the digital HDC ASIC
   (warm device session — base/class memories stay resident);
4. push a stream of single-sample requests through the dynamic
   micro-batching queue from several client threads; and
5. **drain, then** print the :class:`~repro.serving.ServerStats`
   snapshot: latency percentiles, throughput, batch-size histogram,
   compile-cache hit rate and the device transfers the warm sessions
   elided.

The drain in step 5 is the idiom to remember: ``server.drain()`` blocks
until every submitted request has resolved, so the subsequent ``stats()``
snapshot accounts for all of them.  Reading stats while requests are
still in flight (queued in a batcher, the fair scheduler or a worker)
undercounts — depending on thread ordering, the final partial batch may
flush only after the snapshot is taken.  ``server.stop()`` (or leaving
the ``with`` block) also drains, but tears the workers down with it;
``drain()`` is how a live service takes a consistent reading.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.apps import HDClassificationInference
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import InferenceServer

DIMENSION = 2048
N_CLIENTS, REQUESTS_PER_CLIENT = 8, 40


def main() -> None:
    dataset = make_isolet_like(IsoletConfig(n_train=1000, n_test=400))

    # -- offline: train once, package the state as a servable ----------------------
    app = HDClassificationInference(dimension=DIMENSION, similarity="hamming")
    servable = app.as_servable(dataset=dataset)
    print(f"trained servable: {servable}")

    # -- online: register and serve ------------------------------------------------
    server = InferenceServer(
        workers=("cpu", "cpu", "hdc_asic"),
        policy="latency_aware",
        max_batch_size=64,
        max_wait_seconds=0.002,
    )
    server.register(servable)

    rng = np.random.default_rng(0)
    picks = rng.integers(0, dataset.test_features.shape[0], size=(N_CLIENTS, REQUESTS_PER_CLIENT))
    correct = [0]
    lock = threading.Lock()

    def client(row: np.ndarray) -> None:
        hits = 0
        for index in row:
            label = int(np.asarray(server.infer(servable.name, dataset.test_features[index])))
            hits += int(label == dataset.test_labels[index])
        with lock:
            correct[0] += hits

    with server:
        threads = [threading.Thread(target=client, args=(picks[c],)) for c in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Drain before reading stats: every submitted request (including
        # the final partial batch) must resolve for a consistent snapshot.
        server.drain()
        stats = server.stats()

    total = N_CLIENTS * REQUESTS_PER_CLIENT
    print(f"\nserved {stats.requests} requests, accuracy {correct[0] / total:.3f}")
    print(f"  batches:        {stats.batches} (mean size {stats.mean_batch_size:.1f})")
    print(f"  batch sizes:    {dict(sorted(stats.batch_size_histogram.items()))}")
    print(
        f"  latency:        p50 {stats.latency_p50_ms:.2f}ms  "
        f"p95 {stats.latency_p95_ms:.2f}ms  p99 {stats.latency_p99_ms:.2f}ms"
    )
    print(f"  throughput:     {stats.throughput_rps:.0f} requests/s")
    print(
        f"  compile cache:  {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"(hit rate {stats.cache_hit_rate:.2f})"
    )
    print(f"  elided device transfers: {stats.elided_transfers}")
    for name, worker in stats.worker_stats.items():
        print(
            f"  worker {name:<12} {worker['samples']:>4} samples in {worker['batches']} batches, "
            f"{worker['ewma_seconds_per_sample'] * 1e6:.0f}us/sample"
        )


if __name__ == "__main__":
    main()
