"""HD-Hashtable scenario: long-read genome sequence search with HD hashing.

A synthetic reference genome is partitioned into buckets whose k-mer
content is bundled into hyperdimensional hash-table values; noisy long
reads are encoded the same way and matched to their origin bucket through
the ``inference_loop`` stage primitive.

Run with:  python examples/genome_search.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import HDHashtable
from repro.baselines import hashtable_python
from repro.datasets import GenomicsConfig, make_genomics_dataset
from repro.evaluation.metrics import format_table


def main() -> None:
    dataset = make_genomics_dataset(
        GenomicsConfig(genome_length=20000, n_reads=80, error_rate=0.06, kmer_length=12)
    )
    app = HDHashtable(dimension=4096)

    rows = []
    for target in ("cpu", "gpu"):
        result = app.run(dataset, target=target)
        rows.append([f"HDC++ ({target})", f"{result.quality:.3f}", f"{result.wall_seconds * 1e3:.1f} ms"])
    baseline = hashtable_python.run(dataset, dimension=4096)
    rows.append(["Python baseline", f"{baseline.quality:.3f}", f"{baseline.wall_seconds * 1e3:.1f} ms"])

    print("=== HD-Hashtable: genome bucket search on noisy long reads ===")
    print(f"reference genome: {len(dataset.genome)} bp in {dataset.n_buckets} buckets, "
          f"{len(dataset.reads)} reads of {dataset.config.read_length} bp "
          f"({dataset.config.error_rate:.0%} error rate)")
    print(format_table(["Implementation", "Bucket accuracy", "Wall clock"], rows))

    result = app.run(dataset, target="gpu")
    matches = result.outputs["matches"]
    correct = matches == dataset.read_buckets
    print(f"\ncorrectly located reads: {int(correct.sum())}/{len(dataset.reads)}")


if __name__ == "__main__":
    main()
