"""Quickstart: write one HDC++ program, compile it for every target.

This example traces a minimal HD-Classification application — random
projection encoding, iterative training and Hamming-distance inference,
expressed with the ``training_loop`` / ``inference_loop`` stage primitives —
and compiles the very same program with HPVM-HDC for the CPU, the GPU, the
digital HDC ASIC and the ReRAM accelerator.  Each target trains its own
class hypervectors (the accelerators do so with their on-device encoders),
and the script prints accuracy plus the per-target execution reports.  It
also dumps the HPVM-HDC IR of the program so you can see the dataflow graph
the back ends consume.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import hdcpp as H
from repro.backends import compile as hdc_compile
from repro.ir import lower_program, print_graph

FEATURES, DIMENSION, CLASSES = 64, 2048, 8
N_TRAIN, N_TEST, EPOCHS = 160, 60, 2


def build_program() -> H.Program:
    """The HDC++ application: dataset-level training and inference loops."""
    prog = H.Program("quickstart_classification")

    @prog.define(H.hv(FEATURES), H.hm(CLASSES, DIMENSION), H.hm(DIMENSION, FEATURES))
    def infer_one(features, class_hvs, rp_matrix):
        encoded = H.sign(H.matmul(features, rp_matrix))
        distances = H.hamming_distance(encoded, H.sign(class_hvs))
        return H.arg_min(distances)

    def train_one(features, label, class_hvs, rp_matrix):
        encoded = np.sign(np.asarray(features) @ np.asarray(rp_matrix).T)
        updated = np.array(class_hvs, copy=True)
        updated[label] += encoded
        return updated

    @prog.entry(
        H.hm(N_TRAIN, FEATURES),
        H.IndexVectorType(N_TRAIN),
        H.hm(N_TEST, FEATURES),
        H.hm(CLASSES, DIMENSION),
        H.hm(DIMENSION, FEATURES),
    )
    def main(train_queries, train_labels, test_queries, class_hvs, rp_matrix):
        trained = H.training_loop(
            train_one, train_queries, train_labels, class_hvs, epochs=EPOCHS, encoder=rp_matrix
        )
        predictions = H.inference_loop(infer_one, test_queries, trained, encoder=rp_matrix)
        return predictions, trained

    return prog


def make_data(seed: int = 0):
    """A toy classification task: noisy copies of per-class prototypes."""
    rng = np.random.default_rng(seed)
    prototypes = rng.normal(size=(CLASSES, FEATURES))

    def sample(count):
        labels = rng.integers(0, CLASSES, size=count)
        data = prototypes[labels] + 0.4 * rng.normal(size=(count, FEATURES))
        return data.astype(np.float32), labels

    train_queries, train_labels = sample(N_TRAIN)
    test_queries, test_labels = sample(N_TEST)
    rp_matrix = (rng.integers(0, 2, size=(DIMENSION, FEATURES)) * 2 - 1).astype(np.float32)
    return train_queries, train_labels, test_queries, test_labels, rp_matrix


def main() -> None:
    program = build_program()
    train_queries, train_labels, test_queries, test_labels, rp_matrix = make_data()

    print("=== HPVM-HDC IR (dataflow graph) ===")
    print(print_graph(lower_program(program)))

    print("=== Execution on every hardware target ===")
    for target in ("cpu", "gpu", "hdc_asic", "hdc_reram"):
        compiled = hdc_compile(program, target=target)
        result = compiled.run(
            train_queries=train_queries,
            train_labels=train_labels,
            test_queries=test_queries,
            class_hvs=np.zeros((CLASSES, DIMENSION), dtype=np.float32),
            rp_matrix=rp_matrix,
        )
        predictions = np.asarray(result.outputs[program.entry_function.results[0].name])
        accuracy = float((predictions == test_labels).mean())
        report = result.report
        print(
            f"{target:10s}  accuracy={accuracy:.2f}  wall={report.wall_seconds * 1e3:7.2f} ms  "
            f"device-only={report.device_seconds * 1e3:7.3f} ms  "
            f"kernel launches={report.kernel_launches}"
        )


if __name__ == "__main__":
    main()
