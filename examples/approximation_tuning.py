"""Sweep the Table 3 approximation settings on HD-Classification inference.

A scaled-down version of the Figure 7 study: the same traced HDC++ program
is compiled under the ten optimization settings of Table 3 (similarity
choice, automatic binarization, reduction perforation) and the script
prints accuracy, wall-clock speedup over the baseline, and the number of
application source lines each setting needs — the programmability argument
of Section 5.4 (a compiler option or 1-2 lines instead of hours of manual
CUDA rewriting).

Run with:  python examples/approximation_tuning.py
"""

from __future__ import annotations

from repro.evaluation import EvaluationScale, fig7_optimizations, table3_settings


def main() -> None:
    # A reduced dimension keeps the sweep quick; use EvaluationScale.default()
    # (or .paper()) for the settings used in EXPERIMENTS.md.
    scale = EvaluationScale(
        name="example", fig7_dim=4096, fig7_train=600, fig7_test=200, isolet_train=600, isolet_test=200
    )

    print("=== Table 3 settings ===")
    for setting in table3_settings(scale.fig7_dim):
        print(f"  {setting.id:>4s}  {setting.name:50s} ({setting.loc_changes} LoC changes)")

    print("\n=== Figure 7: speedup vs accuracy on GPU inference ===")
    result = fig7_optimizations(scale, target="gpu", repeats=2)
    print(result.format())
    print(
        "\nReading the table: the binarized Hamming settings (III, VII, VIII) keep accuracy at the "
        "baseline level, while perforating the encoding matmul (V, VI, IX) trades accuracy for speed."
    )


if __name__ == "__main__":
    main()
