"""Shape-changing hot-swap: streaming index growth under live query load.

The online-retraining demo changed a served model's *weights*; this one
changes its *shape*.  A genome-read hash table is served over the socket
transport while a writer client streams brand-new reference buckets into
it through the ``append`` op: each round k-mer encodes the new sequences
server-side, appends them as rows of the ``table`` constant, re-traces
the programs for the grown shape, warms them, bumps the model version
and hot-swaps — with query traffic flowing the whole time.

1. **Streaming growth** — ``ServingClient.append(model, rows)`` ships a
   batch of base-index reference sequences and returns the new version.
   The op is non-idempotent (appending twice grows the index twice), so
   the client never resends it on a dropped connection.
2. **Zero downtime, zero drops** — loader threads keep inferring across
   every shape change; at the end the stats must show zero failures and
   the loaders zero errors.
3. **Bit identity** — the grown deployment equals an offline rebuild of
   the hash table from the full sequence set: same servable signature
   (content-hashed constants) and bit-identical bucket predictions.

Run with:  python examples/streaming_growth.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.apps import HDHashtable
from repro.datasets import GenomicsConfig, make_genomics_dataset
from repro.datasets.genomics import base_indices
from repro.serving import InferenceServer
from repro.serving.transport import ServingClient, TransportServer

DIMENSION = 1024
KMER_LENGTH = 10
N_ROUNDS = 3
ROWS_PER_ROUND = 2
SEED = 13


def main() -> None:
    dataset = make_genomics_dataset(
        GenomicsConfig(
            genome_length=4000,
            bucket_size=200,
            read_length=80,
            n_reads=40,
            kmer_length=KMER_LENGTH,
            seed=SEED,
        )
    )
    app = HDHashtable(dimension=DIMENSION, seed=SEED)
    base_hvs = app.make_base_hypervectors()
    table = app.encode_reference_buckets(dataset, base_hvs)
    servable = app.as_servable(
        table,
        dataset.config.read_length,
        KMER_LENGTH,
        base_hvs=base_hvs,
        name="genome-search",
        append_length=dataset.config.bucket_size,
    )
    queries = np.stack([base_indices(read) for read in dataset.reads])

    # The stream of new reference material: fresh bucket-length sequences
    # that were not part of the offline build.
    rng = np.random.default_rng(SEED + 1)
    rounds = [
        rng.integers(0, 4, (ROWS_PER_ROUND, dataset.config.bucket_size), dtype=np.int64)
        for _ in range(N_ROUNDS)
    ]

    server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=16, max_wait_seconds=0.002)
    server.register(servable)
    stop = threading.Event()
    background = {"requests": 0, "errors": 0}

    def loader(host: str, port: int) -> None:
        """Sustained query load: the traffic the shape changes must not drop."""
        with ServingClient(host, port, timeout=60.0) as client:
            i = 0
            while not stop.is_set():
                try:
                    client.infer("genome-search", queries[i % len(queries)])
                    background["requests"] += 1
                except Exception:
                    background["errors"] += 1
                i += 1

    with server, TransportServer(server) as transport:
        host, port = transport.address
        print(f"serving genome-search v1 ({table.shape[0]} buckets) on {host}:{port}")
        threads = [
            threading.Thread(target=loader, args=(host, port), daemon=True) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            with ServingClient(host, port, timeout=60.0) as client:
                matches = client.infer_batch("genome-search", queries)
                accuracy = (np.asarray(matches) == dataset.read_buckets).mean()
                print(f"  v1 bucket accuracy: {accuracy:.3f}")
                versions = []
                for rows in rounds:
                    version = client.append("genome-search", rows)
                    versions.append(version)
                    n_rows = table.shape[0] + ROWS_PER_ROUND * len(versions)
                    print(f"  -> v{version}: appended {rows.shape[0]} buckets, "
                          f"table is now {n_rows} rows")
                assert versions == sorted(versions) and len(set(versions)) == N_ROUNDS
                stop.set()
                for thread in threads:
                    thread.join()
                after = [np.asarray(client.infer("genome-search", q)) for q in queries]
                client.drain()
                stats = client.stats()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        grown = server.registry.get("genome-search").servable

    print(f"\nbackground load: {background['requests']} requests across "
          f"{stats['swaps']} shape-changing hot-swaps, {background['errors']} errors, "
          f"{stats['failures']} server-side failures")
    assert background["errors"] == 0 and stats["failures"] == 0, "growth dropped requests"
    assert stats["swaps"] == N_ROUNDS

    # Bit identity: rebuild the hash table offline from the full sequence
    # set and serve it fresh — same signature, same predictions.
    encode_read = app._make_read_encoder(base_hvs, KMER_LENGTH)
    extra = np.stack(
        [np.sign(encode_read(row)) for row in np.vstack(rounds)]
    ).astype(np.float32)
    offline = app.as_servable(
        np.vstack([table, extra]),
        dataset.config.read_length,
        KMER_LENGTH,
        base_hvs=base_hvs,
        name="genome-search",
        append_length=dataset.config.bucket_size,
    )
    assert grown.signature == offline.signature, "grown state drifted from offline rebuild"
    rebuilt = InferenceServer(workers=("cpu",), max_batch_size=16)
    rebuilt.register(offline)
    with rebuilt:
        expected = [np.asarray(rebuilt.infer("genome-search", q)) for q in queries]
    for got, want in zip(after, expected):
        assert np.array_equal(got, want)
    accuracy = (np.asarray(after).ravel() == dataset.read_buckets).mean()
    print(f"offline rebuild of the grown table is bit-identical to the served state "
          f"(bucket accuracy {accuracy:.3f})")


if __name__ == "__main__":
    main()
