"""Online re-training with versioned, zero-downtime model hot-swap.

A model that starts from *blank* class memories is served over the
socket transport while labelled mini-batches stream in through the
``update`` op: each round applies the application's mini-batched
training rule server-side, bumps the monotonic model version and
hot-swaps the re-trained deployment — with requests flowing the whole
time.  Watch the accuracy climb from chance while versions tick up:

1. **Streaming updates** — ``ServingClient.update(model, samples,
   labels)`` runs one re-training round and returns the new version;
   ``model_versions()`` reads the ``{name: version}`` map.
2. **Zero downtime, zero drops** — loader threads keep inferring across
   every swap; at the end the stats must show zero failures, and the
   per-version request ledger (``model_stats[...]["requests_by_version"]``)
   shows the traffic cutting over from version to version.
3. **Bit identity** — the served state after N rounds equals an offline
   retrain applying the same rule to the same mini-batches.

Run with:  python examples/online_retraining.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.apps import HDClassificationInference
from repro.apps.common import bipolar_random
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import InferenceServer
from repro.serving.transport import ServingClient, TransportServer

DIMENSION = 2048
N_ROUNDS = 4
SEED = 9


def main() -> None:
    dataset = make_isolet_like(IsoletConfig(n_train=800, n_test=200, seed=SEED))
    app = HDClassificationInference(dimension=DIMENSION, similarity="hamming")
    # Deploy with *blank* class memories: the service starts at chance
    # accuracy and learns online from the streamed labelled batches.
    rp_matrix = bipolar_random(DIMENSION, dataset.n_features, seed=SEED)
    blank = np.zeros((dataset.n_classes, DIMENSION), dtype=np.float32)
    servable = app.as_servable(trained=(rp_matrix, blank), name="hd-online")

    rounds = [
        (dataset.train_features[i::N_ROUNDS], dataset.train_labels[i::N_ROUNDS])
        for i in range(N_ROUNDS)
    ]

    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)
    stop = threading.Event()
    background = {"requests": 0, "errors": 0}

    def loader(host: str, port: int) -> None:
        """Sustained background load: the traffic the swaps must not drop."""
        with ServingClient(host, port, timeout=60.0) as client:
            i = 0
            while not stop.is_set():
                try:
                    client.infer("hd-online", dataset.test_features[i % 200])
                    background["requests"] += 1
                except Exception:
                    background["errors"] += 1
                i += 1

    with server, TransportServer(server) as transport:
        host, port = transport.address
        print(f"serving hd-online v1 (blank memories) on {host}:{port}")
        # daemon + try/finally stop: a failure mid-demo must surface its
        # traceback, not hang the process behind a still-looping loader.
        thread = threading.Thread(target=loader, args=(host, port), daemon=True)
        thread.start()
        try:
            with ServingClient(host, port, timeout=60.0) as client:
                accuracy = (client.infer_batch("hd-online", dataset.test_features)
                            == dataset.test_labels).mean()
                print(f"  v1 accuracy (untrained): {accuracy:.3f}")
                for samples, labels in rounds:
                    version = client.update("hd-online", samples, labels)
                    predicted = client.infer_batch("hd-online", dataset.test_features)
                    accuracy = (predicted == dataset.test_labels).mean()
                    print(f"  -> v{version}: trained on {samples.shape[0]} samples, "
                          f"accuracy {accuracy:.3f}")
                assert client.model_versions() == {"hd-online": N_ROUNDS + 1}
                stop.set()
                thread.join()
                client.drain()
                stats = client.stats()
        finally:
            stop.set()
            thread.join(timeout=10.0)

    model = stats["model_stats"]["hd-online"]
    print(f"\nbackground load: {background['requests']} requests across "
          f"{stats['swaps']} hot-swaps, {background['errors']} errors, "
          f"{stats['failures']} server-side failures")
    print(f"requests by version: {model['requests_by_version']}")
    assert background["errors"] == 0 and stats["failures"] == 0, "hot-swap dropped requests"
    assert stats["swaps"] == N_ROUNDS and model["version"] == N_ROUNDS + 1
    assert accuracy > 0.5, "online training should lift accuracy well above chance"

    # Bit identity: offline retrain with the same rule = the served state.
    offline = servable
    for samples, labels in rounds:
        offline = offline.updated(samples, labels)
    live = server.registry.get("hd-online").servable
    assert np.array_equal(offline.constants["class_hvs"], live.constants["class_hvs"])
    print("offline retrain on the same batches is bit-identical to the served state")


if __name__ == "__main__":
    main()
