"""Network serving: socket clients, warm cache restarts, SLO metrics.

``examples/serving_quickstart.py`` drives the in-process API; this example
exercises the three capabilities added by the transport refactor:

1. **Socket front end** — a :class:`~repro.serving.transport
   .TransportServer` exposes a running :class:`~repro.serving
   .InferenceServer` over TCP (length-prefixed JSON/binary frames), and
   several :class:`~repro.serving.transport.ServingClient` threads drive
   it concurrently.  Because every front end shares one
   :class:`~repro.serving.broker.RequestBroker`, samples from different
   connections coalesce into the same micro-batches.
2. **Per-deployment SLO metrics** — the model registers with an
   ``slo_ms`` budget; the stats snapshot reports the queue-wait/execute
   latency split and the violation count per deployment.
3. **Persistent compile cache** — the server saves its compiled-program
   cache, a "restarted" server loads it, and the second round of serving
   reports warm cache hits and zero compile misses (no re-trace, no
   re-lower, no re-verify).

Run with:  python examples/network_serving.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.apps import HDClassificationInference
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import InferenceServer
from repro.serving.transport import ServingClient, TransportServer

DIMENSION = 2048
N_CLIENTS, REQUESTS_PER_CLIENT = 6, 25
SLO_MS = 250.0


def serve_round(server: InferenceServer, servable, dataset, picks) -> dict:
    """Expose ``server`` over a socket, drive it with client threads."""
    correct = [0]
    lock = threading.Lock()

    def client_loop(rows: np.ndarray) -> None:
        hits = 0
        with ServingClient(*transport.address, timeout=60.0) as client:
            for index in rows:
                label = int(client.infer(servable.name, dataset.test_features[index]))
                hits += int(label == dataset.test_labels[index])
        with lock:
            correct[0] += hits

    with TransportServer(server) as transport:
        print(f"transport listening on {transport.address[0]}:{transport.address[1]}")
        threads = [
            threading.Thread(target=client_loop, args=(picks[c],)) for c in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ServingClient(*transport.address) as client:
            client.drain()                      # settle everything first
            assert servable.name in client.list_models()
            stats = client.stats()              # the remote ServerStats dict
    return {"stats": stats, "accuracy": correct[0] / (N_CLIENTS * REQUESTS_PER_CLIENT)}


def report(tag: str, outcome: dict, servable_name: str) -> None:
    stats = outcome["stats"]
    model = stats["model_stats"][servable_name]
    print(f"\n[{tag}] served {stats['requests']} requests, accuracy {outcome['accuracy']:.3f}")
    print(
        f"  latency:       p50 {stats['latency_p50_ms']:.2f}ms  "
        f"p99 {stats['latency_p99_ms']:.2f}ms  ({stats['throughput_rps']:.0f} req/s)"
    )
    print(
        f"  split ({servable_name}): queue-wait p95 {model['queue_wait_p95_ms']:.2f}ms, "
        f"execute p95 {model['execute_p95_ms']:.2f}ms"
    )
    print(f"  SLO {model['slo_ms']:.0f}ms: {model['slo_violations']} violations")
    print(
        f"  compile cache: {stats['cache_hits']} hits / {stats['cache_misses']} misses "
        f"({stats['cache_warm_hits']} warm from disk)"
    )


def main() -> None:
    dataset = make_isolet_like(IsoletConfig(n_train=1000, n_test=400))
    app = HDClassificationInference(dimension=DIMENSION, similarity="hamming")
    servable = app.as_servable(dataset=dataset)
    rng = np.random.default_rng(0)
    picks = rng.integers(
        0, dataset.test_features.shape[0], size=(N_CLIENTS, REQUESTS_PER_CLIENT)
    )
    cache_path = Path(tempfile.mkdtemp(prefix="hdc-serving-")) / "compile-cache.pkl"

    # -- first process: compile, serve, persist the cache --------------------------
    # warm="full" compiles the whole bucket ladder, so the saved cache
    # covers every batch shape a restarted server can encounter.
    server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable, slo_ms=SLO_MS, warm="full")
    with server:
        first = serve_round(server, servable, dataset, picks)
        saved = server.save_cache(cache_path)
    report("cold start", first, servable.name)
    print(f"\nsaved {saved} compiled artifacts to {cache_path}")

    # -- "restarted process": load the cache, register, serve warm -----------------
    restarted = InferenceServer(workers=("cpu", "cpu"), max_batch_size=64, max_wait_seconds=0.002)
    loaded = restarted.load_cache(cache_path)
    print(f"restart loaded {loaded} artifacts (registration below compiles nothing)")
    restarted.register(servable, slo_ms=SLO_MS, warm="full")
    with restarted:
        second = serve_round(restarted, servable, dataset, picks)
    report("warm restart", second, servable.name)
    assert second["stats"]["cache_misses"] == 0, "warm restart must not recompile"
    assert second["stats"]["cache_warm_hits"] >= 1


if __name__ == "__main__":
    main()
