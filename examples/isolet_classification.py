"""HD-Classification on the ISOLET-like dataset across all four targets.

The scenario of Figures 5 and 6: the same HDC++ application (random
projection encoding, iterative training, Hamming-distance inference) is
compiled for the CPU, the GPU, the digital HDC ASIC and the ReRAM
accelerator.  The script reports accuracy, measured wall-clock time,
modeled device-only latency and data movement for every target, and then
shows the effect of the two approximation optimizations on the GPU.

Run with:  python examples/isolet_classification.py
"""

from __future__ import annotations

from repro.apps import HDClassification, HDClassificationInference
from repro.datasets import IsoletConfig, make_isolet_like
from repro.evaluation.metrics import format_table
from repro.transforms import ApproximationConfig, PerforationSpec


def main() -> None:
    dataset = make_isolet_like(IsoletConfig(n_train=600, n_test=200))
    app = HDClassification(dimension=2048, epochs=3)

    rows = []
    for target in ("cpu", "gpu", "hdc_asic", "hdc_reram"):
        result = app.run(dataset, target=target)
        rows.append(
            [
                target,
                f"{result.quality:.3f}",
                f"{result.wall_seconds * 1e3:.1f} ms",
                f"{result.report.device_seconds * 1e3:.2f} ms",
                f"{result.report.bytes_to_device / 1e6:.2f} MB",
            ]
        )
    print("=== HD-Classification across hardware targets ===")
    print(format_table(["Target", "Accuracy", "Wall clock", "Device-only", "Bytes to device"], rows))

    print("\n=== Approximation optimizations on GPU inference (Section 5.3) ===")
    inference = HDClassificationInference(dimension=4096, similarity="hamming")
    trained = inference.train_offline(dataset)
    configs = [
        ("exact", ApproximationConfig.none()),
        ("auto-binarize", ApproximationConfig(binarize=True)),
        (
            "binarize + strided hamming [2]",
            ApproximationConfig(binarize=True).with_perforation(
                PerforationSpec("hamming_distance", stride=2)
            ),
        ),
    ]
    rows = []
    for name, config in configs:
        result = inference.run(dataset, target="gpu", config=config, trained=trained)
        rows.append([name, f"{result.quality:.3f}", f"{result.wall_seconds * 1e3:.1f} ms"])
    print(format_table(["Configuration", "Accuracy", "Wall clock"], rows))


if __name__ == "__main__":
    main()
