"""HyperOMS scenario: open modification search over a spectral library.

The mass-spectrometry workload that motivates the Hetero-C++ interoperation
in the paper: level-ID encoding of spectra runs as a generic parallel loop
(``parallel_map``) while the library search is an HDC ``inference_loop``.
The example searches a synthetic spectral library, reports recall@1 against
the known ground truth, and compares with the CUDA-style baseline.

Run with:  python examples/spectral_library_search.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import HyperOMS
from repro.baselines import hyperoms_cuda
from repro.datasets import SpectraConfig, make_spectral_library
from repro.evaluation.metrics import format_table


def main() -> None:
    dataset = make_spectral_library(SpectraConfig(n_library=200, n_queries=100))
    app = HyperOMS(dimension=4096)

    rows = []
    for target in ("cpu", "gpu"):
        result = app.run(dataset, target=target)
        rows.append([f"HDC++ ({target})", f"{result.quality:.3f}", f"{result.wall_seconds * 1e3:.1f} ms"])

    baseline = hyperoms_cuda.run(dataset, dimension=4096)
    rows.append(["CUDA-style baseline (gpu)", f"{baseline.quality:.3f}", f"{baseline.wall_seconds * 1e3:.1f} ms"])

    print("=== HyperOMS: open modification search (recall@1) ===")
    print(format_table(["Implementation", "Recall@1", "Wall clock"], rows))

    # Show a few example matches, including modified queries.
    result = app.run(dataset, target="gpu")
    matches = result.outputs["matches"]
    print("\nSample query results (query -> matched library spectrum, modification in bins):")
    for index in range(5):
        query = dataset.queries[index]
        print(
            f"  query {index:3d}: predicted {int(matches[index]):3d}, true {query.library_match:3d}, "
            f"modification {query.modification_bins:+d}"
        )


if __name__ == "__main__":
    main()
