"""Tests for the scenario-matrix harness (repro.bench).

Three layers, mirroring how the harness is consumed:

* **config parsing** — every structurally invalid config raises the
  typed :class:`MatrixConfigError` with a message naming the offending
  key, so a typo'd matrix fails CI with exit code 2 instead of silently
  sweeping the wrong cells;
* **gates** — the shared ``--fail-on`` grammar's cell paths (greedy
  selector matching, per-cell violations, missing-metric alarms), plus
  the ``tools/scrape_stats.py --check`` path over an emitted matrix
  document;
* **execution** — tiny one-cell matrices of every load shape run
  end-to-end through the real broker, two same-seed runs fingerprint
  identically (the ``REPRO_BENCH_SEED`` contract), and the CLI's
  0/1/2 exit-code split holds.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.bench import (
    MatrixConfigError,
    Threshold,
    bench_seed,
    derive_rng,
    evaluate,
    load_config,
    match_cells,
    parse_config,
    run_cell,
    run_matrix,
)
from repro.bench.loadgen import DEFAULT_SEED, SEED_ENV
from repro.bench.__main__ import main as bench_main


def _load_tool(name: str):
    path = pathlib.Path(__file__).resolve().parent.parent / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def tiny_config(**overrides) -> dict:
    """A minimal valid matrix config; keyword overrides patch sections.

    The workload is deliberately small (128-dim classifier, 16 requests)
    so execution tests complete in well under a second per cell.
    """
    data = {
        "name": "unit",
        "apps": {
            "iso": {
                "kind": "classification",
                "dimension": 128,
                "n_features": 16,
                "n_classes": 4,
                "n_train": 48,
                "n_test": 24,
            }
        },
        "backends": {"cpu": {"workers": ["cpu"]}},
        "configs": {"exact": {}},
        "shapes": {"steady": {"kind": "steady", "requests": 16, "rate_rps": 800}},
    }
    data.update(overrides)
    return data


# ---------------------------------------------------------------------------
# Config parsing: every malformed config is a typed, named error
# ---------------------------------------------------------------------------


class TestConfigNegatives:
    def test_unknown_app_kind(self):
        config = tiny_config(apps={"iso": {"kind": "no-such-app"}})
        with pytest.raises(MatrixConfigError, match="unknown kind 'no-such-app'"):
            parse_config(config)

    def test_unknown_app_param_key(self):
        config = tiny_config(apps={"iso": {"kind": "classification", "dimenson": 128}})
        with pytest.raises(MatrixConfigError, match="'dimenson'"):
            parse_config(config)

    def test_unknown_shape_kind(self):
        config = tiny_config(shapes={"s": {"kind": "sawtooth"}})
        with pytest.raises(MatrixConfigError, match="unknown kind 'sawtooth'"):
            parse_config(config)

    def test_unknown_shape_param_key(self):
        config = tiny_config(shapes={"s": {"kind": "steady", "rate": 100}})
        with pytest.raises(MatrixConfigError, match="'rate'"):
            parse_config(config)

    def test_unknown_worker_target(self):
        config = tiny_config(backends={"b": {"workers": ["tpu"]}})
        with pytest.raises(MatrixConfigError, match="unknown worker target 'tpu'"):
            parse_config(config)

    def test_unknown_backend_key(self):
        config = tiny_config(backends={"b": {"workers": ["cpu"], "batchsize": 8}})
        with pytest.raises(MatrixConfigError, match="'batchsize'"):
            parse_config(config)

    def test_replicas_must_be_a_positive_integer(self):
        config = tiny_config(backends={"b": {"workers": ["cpu"], "replicas": 0}})
        with pytest.raises(MatrixConfigError, match="'replicas' must be a positive integer"):
            parse_config(config)

    def test_replicas_conflicts_with_explicit_transport_flag(self):
        config = tiny_config(
            backends={"b": {"workers": ["cpu"], "replicas": 2, "transport": True}}
        )
        with pytest.raises(MatrixConfigError, match="implied by 'replicas'"):
            parse_config(config)

    def test_malformed_gate_limit(self):
        config = tiny_config(gates=["cell.iso.steady.p99_ms>fast"])
        with pytest.raises(MatrixConfigError, match="malformed gate"):
            parse_config(config)

    def test_gates_must_be_a_list(self):
        config = tiny_config(gates="p99_ms>40")
        with pytest.raises(MatrixConfigError, match="'gates' must be a list"):
            parse_config(config)

    def test_empty_matrix(self):
        config = tiny_config(exclude=[{"app": "iso"}])
        with pytest.raises(MatrixConfigError, match="zero cells"):
            parse_config(config)

    def test_duplicate_cell_ids(self):
        config = tiny_config(
            cells=[{"app": "iso", "backend": "cpu", "config": "exact", "shape": "steady"}]
        )
        with pytest.raises(MatrixConfigError, match="duplicate cell ID"):
            parse_config(config)

    def test_explicit_cell_missing_coordinate(self):
        config = tiny_config(cells=[{"app": "iso", "backend": "cpu"}])
        with pytest.raises(MatrixConfigError, match="missing coordinate"):
            parse_config(config)

    def test_matrix_references_undefined_name(self):
        config = tiny_config(matrix={"apps": ["mnist"]})
        with pytest.raises(MatrixConfigError, match="undefined name 'mnist'"):
            parse_config(config)

    def test_axis_names_reject_dots(self):
        config = tiny_config(configs={"v1.5": {}})
        with pytest.raises(MatrixConfigError, match="no dots"):
            parse_config(config)

    def test_axis_names_reject_reserved_metric_names(self):
        # 'failures' is a per-cell metric: an app named after it would
        # make 'cell.failures>0' ambiguous between selector and metric.
        config = tiny_config(shapes={"failures": {"kind": "steady"}})
        with pytest.raises(MatrixConfigError, match="reserved"):
            parse_config(config)

    def test_retraining_shape_needs_updatable_app(self):
        config = tiny_config(
            apps={"oms": {"kind": "hyperoms"}},
            shapes={"retrain": {"kind": "serve_while_retraining"}},
        )
        with pytest.raises(MatrixConfigError, match="no\\s+update rule"):
            parse_config(config)

    def test_burst_needs_baseline_arrivals(self):
        config = tiny_config(
            shapes={"b": {"kind": "burst", "requests": 8, "bursts": 2, "burst_size": 8}}
        )
        with pytest.raises(MatrixConfigError, match="baseline arrivals"):
            parse_config(config)

    def test_missing_section(self):
        config = tiny_config()
        del config["shapes"]
        with pytest.raises(MatrixConfigError, match="missing the 'shapes' section"):
            parse_config(config)

    def test_unknown_top_level_key(self):
        config = tiny_config(matrices={})
        with pytest.raises(MatrixConfigError, match="'matrices'"):
            parse_config(config)

    def test_seed_must_be_integer(self):
        with pytest.raises(MatrixConfigError, match="'seed' must be an integer"):
            parse_config(tiny_config(seed="42"))

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(MatrixConfigError, match="not valid JSON"):
            load_config(path)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(MatrixConfigError, match="cannot read config"):
            load_config(tmp_path / "missing.json")

    def test_yaml_requires_pyyaml(self, tmp_path):
        has_yaml = importlib.util.find_spec("yaml") is not None
        if has_yaml:
            pytest.skip("PyYAML installed here; the CI environment exercises this path")
        path = tmp_path / "m.yaml"
        path.write_text("apps: {}\n", encoding="utf-8")
        with pytest.raises(MatrixConfigError, match="PyYAML is not installed"):
            load_config(path)


# ---------------------------------------------------------------------------
# Gate grammar: cell paths and selector matching
# ---------------------------------------------------------------------------


def matrix_doc(cells: dict) -> dict:
    return {"benchmark": "matrix", "cells": cells}


def cell(app, backend, config, shape, **metrics):
    return {"app": app, "backend": backend, "config": config, "shape": shape, **metrics}


class TestCellGates:
    DOC = matrix_doc(
        {
            "iso.cpu.exact.steady": cell("iso", "cpu", "exact", "steady", p99_ms=10.0, failures=0),
            "iso.cpu.exact.burst": cell("iso", "cpu", "exact", "burst", p99_ms=80.0, failures=2),
            "oms.cpu.exact.steady": cell("oms", "cpu", "exact", "steady", p99_ms=5.0, failures=0),
        }
    )

    def test_selectors_narrow_greedily(self):
        matched, metric = match_cells(self.DOC["cells"], ["iso", "steady", "p99_ms"])
        assert set(matched) == {"iso.cpu.exact.steady"}
        assert metric == "p99_ms"

    def test_zero_selectors_match_every_cell(self):
        matched, metric = match_cells(self.DOC["cells"], ["failures"])
        assert set(matched) == set(self.DOC["cells"])
        assert metric == "failures"

    def test_one_violation_per_violating_cell(self):
        messages = Threshold("cell.failures>0").violations(self.DOC)
        assert len(messages) == 1
        assert "iso.cpu.exact.burst" in messages[0]

    def test_selector_scopes_the_gate(self):
        assert Threshold("cell.steady.p99_ms>40").violations(self.DOC) == []
        assert len(Threshold("cell.burst.p99_ms>40").violations(self.DOC)) == 1

    def test_missing_metric_is_a_violation(self):
        messages = Threshold("cell.iso.steady.shed>0").violations(self.DOC)
        assert len(messages) == 1 and "missing" in messages[0]

    def test_typoed_selector_alarms_everywhere(self):
        # 'stedy' matches no coordinate, so it becomes the metric path
        # and every still-matched cell reports it missing — a gate can
        # never silently match nothing.
        messages = Threshold("cell.iso.stedy.p99_ms>40").violations(self.DOC)
        assert len(messages) == 2
        assert all("missing" in message for message in messages)

    def test_document_without_cells_is_a_violation(self):
        messages = Threshold("cell.failures>0").violations({"requests": 3})
        assert len(messages) == 1 and "no 'cells'" in messages[0]

    def test_evaluate_concatenates_thresholds(self):
        thresholds = [Threshold("cell.failures>0"), Threshold("cell.p99_ms>40")]
        assert len(evaluate(self.DOC, thresholds)) == 2


# ---------------------------------------------------------------------------
# Execution: tiny cells of every shape, seeding, CLI exit codes
# ---------------------------------------------------------------------------


SHAPE_SPECS = {
    "steady": {"kind": "steady", "requests": 16, "rate_rps": 800},
    "burst": {"kind": "burst", "requests": 20, "rate_rps": 800, "bursts": 2, "burst_size": 6},
    "diurnal": {"kind": "diurnal", "requests": 16, "rate_rps": 800, "periods": 1},
    "hot_skew": {"kind": "hot_skew", "requests": 16, "rate_rps": 800, "clones": 2},
    "retrain": {
        "kind": "serve_while_retraining",
        "requests": 16,
        "rate_rps": 400,
        "updates": 2,
        "update_batch": 12,
    },
}


class TestExecution:
    @pytest.mark.parametrize("shape", sorted(SHAPE_SPECS))
    def test_each_shape_serves_its_whole_stream(self, shape):
        config = parse_config(
            tiny_config(shapes={shape: SHAPE_SPECS[shape]}, matrix={"shapes": [shape]})
        )
        metrics = run_cell(config.cells[0], config, seed=DEFAULT_SEED)
        assert metrics["requests"] == SHAPE_SPECS[shape]["requests"]
        assert metrics["failures"] == 0
        assert metrics["shed"] == 0
        assert metrics["latency_histogram"]["count"] == metrics["requests"]
        if shape == "retrain":
            # Two update rounds: versions 2 and 3 swapped in live, and the
            # server's own log mirrored the replayed source log 1:1.
            assert metrics["versions"] == [2, 3]
            assert metrics["swaps"] == 2
            assert metrics["update_log_records"] == 2
            assert metrics["update_errors"] == []

    def test_replica_cell_serves_through_the_group(self):
        config = parse_config(
            tiny_config(
                backends={"rep": {"workers": ["cpu"], "replicas": 2, "clients": 2}}
            )
        )
        metrics = run_cell(config.cells[0], config, seed=DEFAULT_SEED)
        assert metrics["backend"] == "rep"
        assert metrics["replicas"] == 2
        assert metrics["failures"] == 0
        assert metrics["shed"] == 0
        # The merged group view still accounts every request exactly once.
        assert metrics["latency_histogram"]["count"] == metrics["requests"]

    def test_replica_retraining_cell_logs_each_round_once(self):
        config = parse_config(
            tiny_config(
                backends={"rep": {"workers": ["cpu"], "replicas": 2, "clients": 2}},
                shapes={"retrain": SHAPE_SPECS["retrain"]},
                matrix={"shapes": ["retrain"]},
            )
        )
        metrics = run_cell(config.cells[0], config, seed=DEFAULT_SEED)
        assert metrics["failures"] == 0
        # Both replicas applied both rounds, but the group log records
        # each round exactly once — never once per replica.
        assert metrics["versions"] == [2, 3]
        assert metrics["update_log_records"] == 2
        assert metrics["update_errors"] == []

    def test_binarized_cell_runs(self):
        config = parse_config(tiny_config(configs={"bin": {"binarize": True}}))
        metrics = run_cell(config.cells[0], config, seed=DEFAULT_SEED)
        assert metrics["failures"] == 0
        assert metrics["config"] == "bin"

    def test_same_seed_runs_fingerprint_identically(self, monkeypatch):
        monkeypatch.delenv(SEED_ENV, raising=False)
        monkeypatch.setenv("REPRO_BENCH_TIMESTAMP", "1754630000")
        config = parse_config(tiny_config())
        first = run_matrix(config, seed=123)
        second = run_matrix(config, seed=123)
        other = run_matrix(config, seed=124)
        for cell_id in config.cell_ids:
            assert (
                first["cells"][cell_id]["stream_sha1"]
                == second["cells"][cell_id]["stream_sha1"]
            )
            assert (
                first["cells"][cell_id]["stream_sha1"]
                != other["cells"][cell_id]["stream_sha1"]
            )

    def test_seed_env_var_reroots_every_generator(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV, "777")
        assert bench_seed() == 777
        assert derive_rng(bench_seed(), "salt").integers(0, 2**31) == (
            derive_rng(777, "salt").integers(0, 2**31)
        )
        monkeypatch.setenv(SEED_ENV, "not-a-seed")
        with pytest.raises(ValueError, match=SEED_ENV):
            bench_seed()

    def test_update_pool_too_small_is_a_config_error(self):
        shape = dict(SHAPE_SPECS["retrain"], updates=3, update_batch=64)
        config = parse_config(tiny_config(shapes={"retrain": shape}))
        with pytest.raises(MatrixConfigError, match="labelled samples"):
            run_cell(config.cells[0], config, seed=DEFAULT_SEED)


class TestCli:
    def write_config(self, tmp_path, data=None) -> pathlib.Path:
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(data or tiny_config()), encoding="utf-8")
        return path

    def run(self, *argv) -> int:
        return bench_main(list(argv))

    def test_clean_run_exits_zero_and_writes_document(self, tmp_path):
        config = self.write_config(tmp_path)
        out = tmp_path / "BENCH_matrix.json"
        code = self.run(
            "--config", str(config), "--out", str(out), "--quiet",
            "--fail-on", "cell.iso.steady.failures>0",
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert set(document["cells"]) == {"iso.cpu.exact.steady"}

    def test_violated_gate_exits_one(self, tmp_path):
        config = self.write_config(tmp_path)
        out = tmp_path / "BENCH_matrix.json"
        code = self.run(
            "--config", str(config), "--out", str(out), "--quiet",
            "--fail-on", "cell.iso.steady.requests<100",
        )
        assert code == 1

    def test_invalid_config_exits_two(self, tmp_path):
        config = self.write_config(tmp_path, tiny_config(apps={"iso": {"kind": "nope"}}))
        assert self.run("--config", str(config), "--quiet") == 2

    def test_missing_config_exits_two(self, tmp_path):
        assert self.run("--config", str(tmp_path / "no.json"), "--quiet") == 2

    def test_malformed_fail_on_exits_two(self, tmp_path):
        config = self.write_config(tmp_path)
        assert self.run("--config", str(config), "--fail-on", "cell.>>bogus") == 2

    def test_unknown_cell_selector_exits_two(self, tmp_path):
        config = self.write_config(tmp_path)
        assert self.run("--config", str(config), "--cell", "mnist") == 2

    def test_list_prints_cell_ids_without_running(self, tmp_path, capsys):
        config = self.write_config(tmp_path)
        assert self.run("--config", str(config), "--list") == 0
        assert capsys.readouterr().out.splitlines() == ["iso.cpu.exact.steady"]


class TestScrapeStatsIntegration:
    """The emitted matrix document is re-checkable offline with the same
    gate grammar through ``tools/scrape_stats.py --check``."""

    @pytest.fixture(scope="class")
    def emitted(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("matrix")
        config = parse_config(tiny_config())
        document = run_matrix(config, seed=DEFAULT_SEED)
        path = tmp_path / "BENCH_matrix.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        return path

    def test_clean_check_exits_zero(self, emitted):
        tool = _load_tool("scrape_stats")
        argv = ["--check", str(emitted), "--fail-on", "cell.iso.steady.failures>0"]
        assert tool.main(argv) == 0

    def test_violating_check_exits_one(self, emitted, capsys):
        tool = _load_tool("scrape_stats")
        argv = ["--check", str(emitted), "--fail-on", "cell.iso.steady.requests<100"]
        assert tool.main(argv) == 1
        assert "iso.cpu.exact.steady" in capsys.readouterr().err

    def test_histogram_quantile_paths_resolve(self, emitted):
        tool = _load_tool("scrape_stats")
        document = json.loads(emitted.read_text(encoding="utf-8"))
        value = tool._resolve(
            document["cells"]["iso.cpu.exact.steady"], "latency_histogram.p99_9_ms"
        )
        assert value is not None and value >= 0.0
