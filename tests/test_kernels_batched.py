"""Tests that the batched "library routine" kernels match the reference kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import batched, reference as ref


def float_matrices(max_rows=6, max_dim=64):
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_rows), st.integers(2, max_dim), st.integers(0, 2**32 - 1)
    ).map(_make)


def _make(args):
    rows_a, rows_b, dim, seed = args
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows_a, dim)).astype(np.float32)
    b = rng.normal(size=(rows_b, dim)).astype(np.float32)
    return a, b


class TestGemm:
    def test_matches_reference_matmul(self):
        rng = np.random.default_rng(0)
        lhs = rng.normal(size=(5, 33)).astype(np.float32)
        rhs = rng.normal(size=(9, 33)).astype(np.float32)
        assert np.allclose(batched.gemm(lhs, rhs), ref.matmul(lhs, rhs), atol=1e-3)
        assert np.allclose(batched.gemm(lhs[0], rhs), ref.matmul(lhs[0], rhs), atol=1e-3)

    def test_perforated_gemm_matches_reference(self):
        rng = np.random.default_rng(1)
        lhs = rng.normal(size=(4, 40)).astype(np.float32)
        rhs = rng.normal(size=(6, 40)).astype(np.float32)
        assert np.allclose(
            batched.gemm(lhs, rhs, 4, 36, 2), ref.matmul(lhs, rhs, 4, 36, 2), atol=1e-3
        )

    @given(float_matrices())
    @settings(max_examples=20, deadline=None)
    def test_gemm_property(self, pair):
        a, b = pair
        assert np.allclose(batched.gemm(a, b), ref.matmul(a, b), atol=1e-2)


class TestSimilarity:
    def test_pairwise_cossim_matches_reference(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 50)).astype(np.float32)
        b = rng.normal(size=(7, 50)).astype(np.float32)
        assert np.allclose(batched.pairwise_cossim(a, b), ref.cossim(a, b), atol=1e-5)

    def test_pairwise_cossim_vector_shapes(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=50).astype(np.float32)
        b = rng.normal(size=(7, 50)).astype(np.float32)
        assert batched.pairwise_cossim(a, b).shape == (7,)
        assert batched.pairwise_cossim(a, a) == pytest.approx(1.0)

    def test_pairwise_hamming_bipolar_uses_exact_counts(self):
        rng = np.random.default_rng(4)
        a = ref.sign(rng.normal(size=(5, 65)))
        b = ref.sign(rng.normal(size=(3, 65)))
        assert np.array_equal(batched.pairwise_hamming(a, b), ref.hamming_distance(a, b))

    def test_pairwise_hamming_general_values(self):
        a = np.array([[1.0, 2.0, 3.0]])
        b = np.array([[1.0, 0.0, 3.0], [9.0, 9.0, 9.0]])
        assert np.array_equal(batched.pairwise_hamming(a, b), [[1.0, 3.0]])

    def test_pairwise_hamming_perforation(self):
        rng = np.random.default_rng(5)
        a = ref.sign(rng.normal(size=(4, 80)))
        b = ref.sign(rng.normal(size=(4, 80)))
        assert np.array_equal(
            batched.pairwise_hamming(a, b, 0, 40, 2), ref.hamming_distance(a, b, 0, 40, 2)
        )

    @given(float_matrices())
    @settings(max_examples=20, deadline=None)
    def test_cossim_property(self, pair):
        a, b = pair
        assert np.allclose(batched.pairwise_cossim(a, b), ref.cossim(a, b), atol=1e-4)


class TestReductions:
    def test_rowwise_l2norm(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(5, 30)).astype(np.float32)
        assert np.allclose(batched.rowwise_l2norm(x), ref.l2norm(x), atol=1e-5)
        assert batched.rowwise_l2norm(x[0]) == pytest.approx(float(ref.l2norm(x[0])), rel=1e-5)

    def test_rowwise_argmin_argmax(self):
        x = np.array([[3.0, 1.0, 2.0], [0.0, 5.0, -1.0]])
        assert np.array_equal(batched.rowwise_argmin(x), [1, 2])
        assert np.array_equal(batched.rowwise_argmax(x), [0, 1])

    def test_normalize_rows(self):
        x = np.array([[3.0, 4.0], [0.0, 0.0]])
        out = batched.normalize_rows(x)
        assert np.allclose(np.linalg.norm(out[0]), 1.0)
        assert np.allclose(out[1], 0.0)

    def test_bundle_rows(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(batched.bundle_rows(x), [4.0, 6.0])
        assert np.allclose(batched.bundle_rows(x, weights=np.array([2.0, 1.0])), [5.0, 8.0])

    def test_transpose(self):
        x = np.arange(6).reshape(2, 3)
        assert batched.transpose(x).shape == (3, 2)
