"""Integration tests for the five HDC++ applications on their supported targets."""

import numpy as np
import pytest

from repro.apps import (
    HDClassification,
    HDClassificationInference,
    HDClustering,
    HDHashtable,
    HyperOMS,
    RelHD,
)
from repro.transforms import ApproximationConfig


class TestHDClassification:
    @pytest.fixture(scope="class")
    def app(self):
        return HDClassification(dimension=512, epochs=2)

    @pytest.mark.parametrize("target", ["cpu", "gpu", "hdc_asic", "hdc_reram"])
    def test_runs_on_all_targets(self, app, tiny_isolet, target):
        result = app.run(tiny_isolet, target=target)
        assert result.quality > 1.0 / 26 * 3  # clearly above chance
        assert result.outputs["predictions"].shape == (80,)
        assert result.outputs["class_hypervectors"].shape == (26, 512)
        assert result.wall_seconds > 0

    def test_cpu_and_gpu_agree(self, app, tiny_isolet):
        cpu = app.run(tiny_isolet, target="cpu")
        gpu = app.run(tiny_isolet, target="gpu")
        # Training orders differ (per-sample vs mini-batch), so predictions
        # may differ slightly, but quality must be comparable.
        assert abs(cpu.quality - gpu.quality) < 0.15

    def test_accelerator_reports_device_time(self, app, tiny_isolet):
        result = app.run(tiny_isolet, target="hdc_asic")
        assert result.report.device_seconds > 0
        assert result.report.notes["train_iterations"] == 200 * 2


class TestHDClassificationInference:
    def test_offline_training_and_inference(self, tiny_isolet):
        app = HDClassificationInference(dimension=1024, similarity="cosine")
        result = app.run(tiny_isolet, target="gpu")
        assert result.quality > 0.3

    def test_hamming_variant_and_binarization(self, tiny_isolet):
        app = HDClassificationInference(dimension=1024, similarity="hamming")
        trained = app.train_offline(tiny_isolet)
        exact = app.run(tiny_isolet, target="gpu", trained=trained)
        binarized = app.run(
            tiny_isolet, target="gpu", config=ApproximationConfig(binarize=True), trained=trained
        )
        assert abs(exact.quality - binarized.quality) < 0.1

    def test_trained_state_is_reusable(self, tiny_isolet):
        app = HDClassificationInference(dimension=1024)
        trained = app.train_offline(tiny_isolet)
        a = app.run(tiny_isolet, target="cpu", trained=trained)
        b = app.run(tiny_isolet, target="gpu", trained=trained)
        assert np.array_equal(a.outputs["predictions"], b.outputs["predictions"])


class TestHDClustering:
    @pytest.fixture(scope="class")
    def app(self):
        return HDClustering(dimension=512, n_clusters=26, iterations=3)

    @pytest.mark.parametrize("target", ["cpu", "gpu", "hdc_asic", "hdc_reram"])
    def test_runs_on_all_targets(self, app, tiny_isolet, target):
        result = app.run(tiny_isolet, target=target)
        assert 0.0 < result.quality <= 1.0
        assert result.quality > 1.0 / 26
        assert result.outputs["assignments"].shape == (200,)
        assert 1 <= result.outputs["iterations_run"] <= 3

    def test_quality_metric_is_purity(self, app, tiny_isolet):
        assert app.run(tiny_isolet, target="gpu").quality_metric == "purity"


class TestHyperOMS:
    @pytest.fixture(scope="class")
    def app(self):
        return HyperOMS(dimension=1024)

    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_recall_above_chance(self, app, tiny_spectra, target):
        result = app.run(tiny_spectra, target=target)
        assert result.quality > 0.5
        assert result.outputs["matches"].shape == (25,)

    def test_cpu_gpu_agree(self, app, tiny_spectra):
        cpu = app.run(tiny_spectra, target="cpu")
        gpu = app.run(tiny_spectra, target="gpu")
        assert np.array_equal(cpu.outputs["matches"], gpu.outputs["matches"])


class TestRelHD:
    @pytest.fixture(scope="class")
    def app(self):
        return RelHD(dimension=1024, epochs=2)

    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_node_classification_accuracy(self, app, tiny_cora, target):
        result = app.run(tiny_cora, target=target)
        assert result.quality > 0.5
        assert result.outputs["predictions"].shape == (tiny_cora.test_nodes.size,)

    def test_neighbour_aggregation_shape(self, app, tiny_cora):
        encoded = np.sign(np.random.default_rng(0).normal(size=(tiny_cora.n_nodes, 1024))).astype(
            np.float32
        )
        aggregated = app.aggregate_neighbours(encoded, tiny_cora)
        assert aggregated.shape == encoded.shape
        assert set(np.unique(aggregated)) <= {-1.0, 1.0}


class TestHDHashtable:
    @pytest.fixture(scope="class")
    def app(self):
        return HDHashtable(dimension=1024)

    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_bucket_search_accuracy(self, app, tiny_genomics, target):
        result = app.run(tiny_genomics, target=target)
        assert result.quality > 0.6
        assert result.outputs["matches"].shape == (25,)

    def test_reference_table_shape(self, app, tiny_genomics):
        base = app.make_base_hypervectors()
        table = app.encode_reference_buckets(tiny_genomics, base)
        assert table.shape == (tiny_genomics.n_buckets, 1024)
        assert set(np.unique(table)) <= {-1.0, 0.0, 1.0}
