"""Tests for the evaluation harness (metrics, configs, LoC, experiment drivers)."""

import numpy as np
import pytest

from repro.evaluation import (
    EvaluationScale,
    count_lines_of_code,
    fig6_accelerators,
    fig7_optimizations,
    geomean,
    relative_speedup,
    table2_applications,
    table3_settings,
    table4_loc,
)
from repro.evaluation.metrics import accuracy, format_table
from repro.transforms import ApproximationConfig


class TestMetrics:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_relative_speedup(self):
        assert relative_speedup(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            relative_speedup(1.0, 0.0)

    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy([1, 2], [1, 2, 3])

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]])
        assert "a" in text and "30" in text


class TestTable3Settings:
    def test_ten_settings_defined(self):
        settings = table3_settings()
        assert [s.id for s in settings] == ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"]

    def test_baseline_is_identity(self):
        settings = {s.id: s for s in table3_settings()}
        assert settings["I"].config.is_identity
        assert settings["I"].similarity == "cosine"
        assert settings["I"].loc_changes == 0

    def test_binarization_flags(self):
        settings = {s.id: s for s in table3_settings()}
        assert settings["III"].config.binarize and not settings["III"].config.binarize_reduce
        assert settings["IV"].config.binarize_reduce

    def test_perforation_parameters(self):
        settings = {s.id: s for s in table3_settings(dimension=1000)}
        (spec,) = settings["VI"].config.perforations
        assert spec.stride == 4
        (spec,) = settings["VIII"].config.perforations
        assert spec.end == 500
        (spec,) = settings["X"].config.perforations
        assert str(spec.opcode) in ("cossim", "Opcode.COSSIM") or spec.resolved_opcode().name == "COSSIM"

    def test_loc_changes_match_paper(self):
        settings = {s.id: s for s in table3_settings()}
        assert [settings[i].loc_changes for i in ("I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X")] == [
            0, 1, 1, 1, 2, 2, 3, 3, 1, 1,
        ]


class TestLocCounting:
    def test_blank_and_comment_lines_ignored(self):
        source = "\n".join(
            [
                '"""Module docstring."""',
                "",
                "# a comment",
                "x = 1",
                "def f():",
                '    """Docstring."""',
                "    return x  # trailing comment",
            ]
        )
        assert count_lines_of_code(source) == 3

    def test_table4_rows_populated(self):
        result = table4_loc()
        assert len(result.rows) == 5
        apps = [row.app for row in result.rows]
        assert "HyperOMS" in apps
        hyperoms = next(r for r in result.rows if r.app == "HyperOMS")
        assert hyperoms.cpu_baseline_loc is None
        assert hyperoms.gpu_baseline_loc > 0
        assert all(row.hdcpp_loc > 0 for row in result.rows)
        assert result.geomean_reduction > 0
        assert "GEOMEAN" in result.format()


class TestTable2:
    def test_inventory(self):
        rows = table2_applications()
        assert len(rows) == 5
        classification = next(r for r in rows if r["application"] == "HD-Classification")
        assert "hdc_asic" in classification["targets"]
        hyperoms = next(r for r in rows if r["application"] == "HyperOMS")
        assert "hdc_asic" not in hyperoms["targets"]


class TestExperimentDrivers:
    """Smoke-scale runs of the figure drivers (Figure 5 is exercised by the
    benchmark harness; it is too slow for the unit test suite)."""

    def test_scales(self):
        assert EvaluationScale.smoke().isolet_train < EvaluationScale.default().isolet_train
        assert EvaluationScale.paper().fig7_dim == 10240

    def test_fig6_shape(self):
        result = fig6_accelerators(EvaluationScale.smoke())
        assert len(result.rows) == 4
        for row in result.rows:
            assert row.device_seconds > 0
            assert row.jetson_seconds > 0
            assert row.speedup > 1.0, "accelerators must beat the edge GPU on device-only latency"
        text = result.format()
        assert "HDC Digital ASIC" in text and "ReRAM" in text

    def test_fig7_shape(self):
        result = fig7_optimizations(EvaluationScale.smoke(), repeats=1)
        assert len(result.rows) == 10
        by_id = {row.setting.id: row for row in result.rows}
        assert by_id["I"].speedup == pytest.approx(1.0)
        # Binarized Hamming (III) must not lose meaningful accuracy.
        assert by_id["III"].accuracy >= by_id["I"].accuracy - 0.1
        # Aggressive encoding perforation (VI) must cost accuracy relative to III.
        assert by_id["VI"].accuracy <= by_id["III"].accuracy + 0.05
        assert "Speedup" in result.format()
