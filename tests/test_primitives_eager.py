"""Tests for the HDC++ primitives executed eagerly (torchhd-style usage)."""

import numpy as np
import pytest

from repro import hdcpp as H


class TestEagerValues:
    def test_hypervector_wrapper(self):
        hv = H.HyperVector(np.arange(8, dtype=np.float32))
        assert hv.dim == 8
        assert hv.type == H.hv(8)
        assert len(hv) == 8
        assert hv[3] == 3.0

    def test_hypermatrix_wrapper(self):
        hm = H.HyperMatrix(np.zeros((3, 4), dtype=np.float32))
        assert hm.rows == 3 and hm.cols == 4
        assert hm.row(1).dim == 4
        assert hm[0].dim == 4

    def test_binary_element_forces_bipolar_storage(self):
        hv = H.HyperVector(np.array([0.5, -2.0, 0.0]), H.binary)
        assert set(np.unique(hv.data)) <= {-1, 1}

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            H.HyperVector(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            H.HyperMatrix(np.zeros(4))

    def test_from_rows(self):
        hm = H.HyperMatrix.from_rows([np.ones(4), np.zeros(4)])
        assert hm.rows == 2

    def test_wrap_like(self):
        assert isinstance(H.wrap_like(np.zeros(3), H.float32), H.HyperVector)
        assert isinstance(H.wrap_like(np.zeros((2, 3)), H.float32), H.HyperMatrix)
        with pytest.raises(ValueError):
            H.wrap_like(np.zeros((2, 2, 2)), H.float32)


class TestInitPrimitives:
    def test_hypervector_and_hypermatrix_empty(self):
        assert np.all(np.asarray(H.hypervector(16)) == 0)
        assert H.hypermatrix(3, 5).type == H.hm(3, 5)

    def test_create(self):
        hv = H.create_hypervector(5, lambda i: i + 1.0)
        assert np.allclose(np.asarray(hv), [1, 2, 3, 4, 5])
        hm = H.create_hypermatrix(2, 2, lambda i, j: i - j)
        assert np.asarray(hm)[1, 0] == 1

    def test_random_reproducible_with_seed(self):
        a = H.random_hypervector(64, seed=9)
        b = H.random_hypervector(64, seed=9)
        assert a.allclose(b)

    def test_random_bipolar_for_integer_elements(self):
        hv = H.random_hypervector(128, element=H.int8, seed=1)
        assert set(np.unique(np.asarray(hv))) <= {-1, 1}

    def test_gaussian(self):
        hm = H.gaussian_hypermatrix(50, 50, seed=2)
        assert abs(float(np.asarray(hm).mean())) < 0.1


class TestElementwisePrimitives:
    def test_sign_and_sign_flip(self):
        hv = H.HyperVector(np.array([0.5, -1.5, 0.0]))
        assert np.array_equal(np.asarray(H.sign(hv)), [1, -1, 1])
        assert np.array_equal(np.asarray(H.sign_flip(hv)), [-0.5, 1.5, 0.0])

    def test_sign_keeps_storage_element(self):
        hv = H.HyperVector(np.array([1.0, -2.0]))
        assert H.sign(hv).element is H.float32

    def test_binding_and_bundling(self):
        a = H.HyperVector(np.array([1.0, -1.0, 1.0]))
        b = H.HyperVector(np.array([1.0, 1.0, -1.0]))
        assert np.array_equal(np.asarray(H.mul(a, b)), [1, -1, -1])
        assert np.array_equal(np.asarray(H.add(a, b)), [2, 0, 0])
        assert np.array_equal(np.asarray(H.sub(a, b)), [0, -2, 2])
        assert np.allclose(np.asarray(H.div(a, b)), [1, -1, -1])

    def test_shape_mismatch_raises(self):
        with pytest.raises(TypeError):
            H.add(H.hypervector(4), H.hypervector(5))

    def test_wrap_shift(self):
        hv = H.HyperVector(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(np.asarray(H.wrap_shift(hv, 1)), [3, 1, 2])

    def test_absolute_value_cosine_typecast(self):
        hv = H.HyperVector(np.array([-2.0, 2.0]))
        assert np.array_equal(np.asarray(H.absolute_value(hv)), [2, 2])
        assert np.allclose(np.asarray(H.cosine(H.HyperVector(np.array([0.0])))), [1.0])
        cast = H.type_cast(hv, H.int8)
        assert cast.element is H.int8


class TestAccessPrimitives:
    def test_get_element(self):
        hm = H.HyperMatrix(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert H.get_element(hm, 1, 2) == 5.0
        hv = H.HyperVector(np.array([7.0, 8.0]))
        assert H.get_element(hv, 1) == 8.0

    def test_arg_min_max(self):
        hv = H.HyperVector(np.array([3.0, 1.0, 2.0]))
        assert H.arg_min(hv) == 1
        assert H.arg_max(hv) == 0
        hm = H.HyperMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert np.array_equal(H.arg_max(hm), [0, 1])

    def test_matrix_row_ops(self):
        hm = H.HyperMatrix(np.zeros((2, 3), dtype=np.float32))
        row = H.HyperVector(np.ones(3, dtype=np.float32))
        updated = H.set_matrix_row(hm, row, 0)
        assert np.array_equal(np.asarray(H.get_matrix_row(updated, 0)), [1, 1, 1])
        assert np.all(np.asarray(hm) == 0)

    def test_matrix_transpose(self):
        hm = H.HyperMatrix(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert H.matrix_transpose(hm).type == H.hm(3, 2)


class TestReductionPrimitives:
    def test_l2norm(self):
        assert H.l2norm(H.HyperVector(np.array([3.0, 4.0]))) == pytest.approx(5.0)

    def test_cossim_and_hamming(self):
        rng = np.random.default_rng(0)
        q = H.sign(H.HyperVector(rng.normal(size=64)))
        classes = H.sign(H.HyperMatrix(rng.normal(size=(4, 64))))
        sims = H.cossim(q, classes)
        dists = H.hamming_distance(q, classes)
        assert np.asarray(sims).shape == (4,)
        assert np.asarray(dists).shape == (4,)
        # cossim and hamming must agree on the closest class for bipolar data
        assert int(H.arg_max(sims)) == int(H.arg_min(dists))

    def test_matmul_encoding_shape(self):
        rng = np.random.default_rng(1)
        features = H.HyperVector(rng.normal(size=20))
        rp = H.HyperMatrix(rng.normal(size=(50, 20)))
        encoded = H.matmul(features, rp)
        assert encoded.type.dim == 50

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(TypeError):
            H.matmul(H.hypervector(10), H.hypermatrix(5, 11))

    def test_red_perf_is_noop_in_eager_mode(self):
        hv = H.HyperVector(np.array([1.0, 2.0]))
        assert H.red_perf(hv, 0, 2, 1) is hv


class TestEagerStagesAndHetero:
    def test_eager_inference_loop_with_callable(self):
        rng = np.random.default_rng(2)
        classes = H.sign(H.HyperMatrix(rng.normal(size=(3, 32))))

        def impl(query, class_hvs):
            return H.arg_min(H.hamming_distance(H.sign(query), class_hvs))

        queries = H.HyperMatrix(np.asarray(classes)[np.array([2, 0, 1])].astype(np.float32))
        out = H.inference_loop(impl, queries, classes)
        assert np.array_equal(out, [2, 0, 1])

    def test_eager_training_loop_with_callable(self):
        classes = H.HyperMatrix(np.zeros((2, 4), dtype=np.float32))
        queries = H.HyperMatrix(np.array([[1.0, 1, 1, 1], [-1.0, -1, -1, -1]], dtype=np.float32))

        def impl(query, label, class_hvs):
            updated = np.array(class_hvs, copy=True)
            updated[label] += np.asarray(query)
            return H.HyperMatrix(updated)

        out = H.training_loop(impl, queries, np.array([0, 1]), classes, epochs=2)
        assert np.allclose(np.asarray(out)[0], [2, 2, 2, 2])

    def test_eager_parallel_map(self):
        data = H.HyperMatrix(np.arange(12, dtype=np.float32).reshape(3, 4))
        out = H.parallel_map(lambda row: H.sign_flip(row), data)
        assert np.allclose(np.asarray(out), -np.asarray(data))

    def test_eager_stage_requires_callable(self):
        prog = H.Program("p")

        @prog.define(H.hv(4), H.hm(2, 4))
        def impl(q, c):
            return H.arg_min(H.hamming_distance(q, c))

        with pytest.raises(H.TracingError):
            H.inference_loop(impl, H.HyperMatrix(np.zeros((2, 4))), H.HyperMatrix(np.zeros((2, 4))))

    def test_hetero_attributes_is_noop(self):
        assert H.hetero_attributes(1, 2, 3) is None


class TestVectorizedEagerParallelMap:
    """The eager parallel_map fast path (one batched NumPy call) must stay
    bit-identical to the reference per-row Python loop."""

    @staticmethod
    def _per_row_reference(impl, data, extra=None):
        rows = []
        for i in range(data.rows):
            row = data.row(i)
            out = impl(row) if extra is None else impl(row, extra)
            rows.append(np.asarray(out))
        return np.stack(rows)

    def test_vectorizable_impl_bit_identical_to_row_loop(self):
        rng = np.random.default_rng(3)
        data = H.HyperMatrix(rng.standard_normal((17, 33)).astype(np.float32))
        for impl in (
            lambda row: H.sign(row),
            lambda row: H.sign_flip(row),
            lambda row: H.wrap_shift(row, 2),
        ):
            out = np.asarray(H.parallel_map(impl, data))
            assert np.array_equal(out, self._per_row_reference(impl, data)), impl

    def test_extra_operand_bit_identical(self):
        rng = np.random.default_rng(4)
        data = H.HyperMatrix(rng.standard_normal((9, 16)).astype(np.float32))
        codebook = H.HyperMatrix(
            np.sign(rng.standard_normal((9, 16))).astype(np.float32)
        )

        def impl(row, extra):
            return H.HyperVector(np.asarray(row) * np.asarray(extra)[0])

        out = np.asarray(H.parallel_map(impl, data, extra=codebook))
        assert np.array_equal(out, self._per_row_reference(impl, data, codebook))

    def test_row_only_impl_falls_back_bit_identical(self):
        """An impl that chokes on matrices must run the per-row path."""
        rng = np.random.default_rng(5)
        data = H.HyperMatrix(rng.standard_normal((7, 12)).astype(np.float32))

        def row_only(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return H.HyperVector(arr * 2.0 + 1.0)

        out = np.asarray(H.parallel_map(row_only, data))
        assert np.array_equal(out, self._per_row_reference(row_only, data))

    def test_non_rowwise_matrix_semantics_rejected(self):
        """A batched result that differs from per-row application (here a
        scan across the row axis) must be rejected via the boundary-row
        check and recomputed row by row."""
        data = H.HyperMatrix(np.ones((5, 4), dtype=np.float32))

        def sneaky(value):
            arr = np.asarray(value)
            if arr.ndim == 2:
                # Row 0 matches per-row application, rows 1+ do not.
                return H.HyperMatrix(np.cumsum(arr, axis=0))
            return H.HyperVector(arr)

        out = np.asarray(H.parallel_map(sneaky, data))
        assert np.array_equal(out, self._per_row_reference(sneaky, data))

    def test_single_row_matrix(self):
        data = H.HyperMatrix(np.arange(4, dtype=np.float32).reshape(1, 4))
        out = np.asarray(H.parallel_map(lambda row: H.sign_flip(row), data))
        assert np.array_equal(out, -np.asarray(data))

    def test_hashtable_read_encoder_bit_identical(self):
        """The ROADMAP-flagged hot encoder: batched vs per-row paths agree."""
        from repro.apps.hashtable import HDHashtable

        app = HDHashtable(dimension=64, seed=9)
        base_hvs = app.make_base_hypervectors()
        encode_read = app._make_read_encoder(base_hvs, kmer_length=4)
        rng = np.random.default_rng(6)
        reads = H.HyperMatrix(rng.integers(0, 4, (8, 20)).astype(np.int64), H.int64)
        out = np.asarray(H.parallel_map(encode_read, reads, output_dim=64))
        assert np.array_equal(out, self._per_row_reference(encode_read, reads))

    def test_hypervector_only_attributes_fall_back(self):
        """An impl touching HyperVector-only surface (``.dim``) raises
        AttributeError on the speculative whole-matrix probe; it must fall
        back to the per-row loop, not crash."""
        rng = np.random.default_rng(8)
        data = H.HyperMatrix(rng.standard_normal((6, 10)).astype(np.float32))

        def row_attrs(row):
            return H.HyperVector(np.asarray(row) * float(row.dim))

        out = np.asarray(H.parallel_map(row_attrs, data))
        assert np.array_equal(out, self._per_row_reference(row_attrs, data))
