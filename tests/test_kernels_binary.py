"""Unit and property-based tests for the packed-bit (binary) kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import binary as binkern
from repro.kernels import reference as ref


def bipolar_arrays(max_rows=6, max_dim=96):
    """Hypothesis strategy: a pair of bipolar matrices with a shared dim."""
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_rows), st.integers(1, max_dim), st.integers(0, 2**32 - 1)
    ).map(_make_pair)


def _make_pair(args):
    rows_a, rows_b, dim, seed = args
    rng = np.random.default_rng(seed)
    a = (rng.integers(0, 2, size=(rows_a, dim)) * 2 - 1).astype(np.int8)
    b = (rng.integers(0, 2, size=(rows_b, dim)) * 2 - 1).astype(np.int8)
    return a, b


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        x = (rng.integers(0, 2, size=(5, 70)) * 2 - 1).astype(np.int8)
        packed = binkern.pack_bipolar(x)
        assert packed.dtype == np.uint8
        assert packed.shape == (5, 9)
        assert np.array_equal(binkern.unpack_bipolar(packed, 70), x)

    def test_packed_num_bytes(self):
        assert binkern.packed_num_bytes(8) == 1
        assert binkern.packed_num_bytes(9) == 2
        assert binkern.packed_num_bytes(2048) == 256

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, pair):
        a, _ = pair
        assert np.array_equal(binkern.unpack_bipolar(binkern.pack_bipolar(a), a.shape[1]), a)


class TestPackedHamming:
    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        a = (rng.integers(0, 2, size=(4, 130)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(7, 130)) * 2 - 1).astype(np.int8)
        expected = ref.hamming_distance(a, b)
        out = binkern.hamming_distance_bipolar(a, b)
        assert np.array_equal(out, expected)

    def test_vector_shapes(self):
        rng = np.random.default_rng(2)
        a = (rng.integers(0, 2, size=64) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(3, 64)) * 2 - 1).astype(np.int8)
        assert binkern.hamming_distance_bipolar(a, a) == 0
        assert binkern.hamming_distance_bipolar(a, b).shape == (3,)
        assert binkern.hamming_distance_bipolar(b, a).shape == (3,)

    def test_perforation_matches_reference(self):
        rng = np.random.default_rng(3)
        a = (rng.integers(0, 2, size=(3, 100)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(4, 100)) * 2 - 1).astype(np.int8)
        expected = ref.hamming_distance(a, b, 10, 80, 3)
        out = binkern.hamming_distance_bipolar(a, b, 10, 80, 3)
        assert np.array_equal(out, expected)

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_packed_equals_reference_property(self, pair):
        a, b = pair
        assert np.array_equal(
            binkern.hamming_distance_bipolar(a, b), ref.hamming_distance(a, b)
        )

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_symmetry_property(self, pair):
        a, b = pair
        assert np.array_equal(
            binkern.hamming_distance_bipolar(a, b), binkern.hamming_distance_bipolar(b, a).T
        )


class TestBipolarDotAndCosine:
    def test_dot_identity(self):
        rng = np.random.default_rng(4)
        a = (rng.integers(0, 2, size=(3, 90)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(5, 90)) * 2 - 1).astype(np.int8)
        expected = a.astype(np.float64) @ b.astype(np.float64).T
        assert np.allclose(binkern.dot_bipolar(a, b), expected)

    def test_cossim_of_identical_vectors_is_one(self):
        rng = np.random.default_rng(5)
        a = (rng.integers(0, 2, size=(1, 256)) * 2 - 1).astype(np.int8)
        assert binkern.cossim_bipolar(a, a)[0, 0] == pytest.approx(1.0)

    def test_cossim_matches_reference_cossim(self):
        rng = np.random.default_rng(6)
        a = (rng.integers(0, 2, size=(3, 128)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(4, 128)) * 2 - 1).astype(np.int8)
        assert np.allclose(binkern.cossim_bipolar(a, b), ref.cossim(a, b), atol=1e-5)

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_dot_hamming_identity_property(self, pair):
        a, b = pair
        dim = a.shape[1]
        dots = binkern.dot_bipolar(a, b)
        hams = binkern.hamming_distance_bipolar(a, b)
        assert np.allclose(dots, dim - 2 * hams)
