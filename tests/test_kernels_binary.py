"""Unit and property-based tests for the packed-bit (binary) kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import binary as binkern
from repro.kernels import reference as ref


def bipolar_arrays(max_rows=6, max_dim=96):
    """Hypothesis strategy: a pair of bipolar matrices with a shared dim."""
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_rows), st.integers(1, max_dim), st.integers(0, 2**32 - 1)
    ).map(_make_pair)


def _make_pair(args):
    rows_a, rows_b, dim, seed = args
    rng = np.random.default_rng(seed)
    a = (rng.integers(0, 2, size=(rows_a, dim)) * 2 - 1).astype(np.int8)
    b = (rng.integers(0, 2, size=(rows_b, dim)) * 2 - 1).astype(np.int8)
    return a, b


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        x = (rng.integers(0, 2, size=(5, 70)) * 2 - 1).astype(np.int8)
        packed = binkern.pack_bipolar(x)
        assert packed.dtype == np.uint64
        assert packed.shape == (5, 2)  # ceil(70 / 64) words per row
        assert packed.dim == 70
        assert np.array_equal(binkern.unpack_bipolar(packed, 70), x)

    def test_packed_num_bytes(self):
        assert binkern.packed_num_bytes(8) == 1
        assert binkern.packed_num_bytes(9) == 2
        assert binkern.packed_num_bytes(2048) == 256

    def test_packed_num_words(self):
        assert binkern.packed_num_words(1) == 1
        assert binkern.packed_num_words(64) == 1
        assert binkern.packed_num_words(65) == 2
        assert binkern.packed_num_words(2048) == 32

    def test_payload_view_matches_legacy_uint8_layout(self):
        # The uint64 words must view back to exactly the bytes the old
        # uint8 layout stored on disk (big-endian np.packbits order).
        rng = np.random.default_rng(7)
        x = (rng.integers(0, 2, size=(5, 70)) * 2 - 1).astype(np.int8)
        packed = binkern.pack_bipolar(x)
        legacy = np.packbits((x > 0).astype(np.uint8), axis=-1)
        assert np.array_equal(packed.payload_bytes(), legacy)

    def test_tail_bits_are_zero(self):
        # Padding bits beyond dim must be zero: Hamming popcounts whole
        # words, so a stray tail bit would corrupt every distance.
        x = np.ones((3, 67), dtype=np.int8)
        packed = binkern.pack_bipolar(x)
        words = np.asarray(packed)
        # Byte view: 67 bits -> 9 payload bytes; the 9th carries 3 set
        # bits in its high (big-endian) positions, bytes 10..16 are pad.
        raw = np.ascontiguousarray(words).view(np.uint8).reshape(3, -1)
        assert np.all(raw[:, 8] == 0b11100000)
        assert np.all(raw[:, 9:] == 0)
        # All-ones row: exactly dim bits set across the row's words.
        counts = binkern.popcount_words(words).sum(axis=-1)
        assert np.all(counts == 67)

    def test_pack_is_idempotent_on_packed(self):
        rng = np.random.default_rng(8)
        x = (rng.integers(0, 2, size=(2, 100)) * 2 - 1).astype(np.int8)
        packed = binkern.pack_bipolar(x)
        assert binkern.pack_bipolar(packed) is packed

    def test_unpack_accepts_legacy_uint8_rows(self):
        rng = np.random.default_rng(9)
        x = (rng.integers(0, 2, size=(4, 70)) * 2 - 1).astype(np.int8)
        legacy = np.packbits((x > 0).astype(np.uint8), axis=-1)
        assert np.array_equal(binkern.unpack_bipolar(legacy, 70), x)

    def test_pack_cache_reuses_stable_operands(self):
        rng = np.random.default_rng(10)
        x = (rng.integers(0, 2, size=(4, 128)) * 2 - 1).astype(np.int8)
        p1 = binkern.pack_bipolar_cached(x)
        p2 = binkern.pack_bipolar_cached(x)
        assert p1 is p2
        assert np.array_equal(binkern.unpack_bipolar(p1, 128), x)

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, pair):
        a, _ = pair
        assert np.array_equal(binkern.unpack_bipolar(binkern.pack_bipolar(a), a.shape[1]), a)


class TestPackedHamming:
    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        a = (rng.integers(0, 2, size=(4, 130)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(7, 130)) * 2 - 1).astype(np.int8)
        expected = ref.hamming_distance(a, b)
        out = binkern.hamming_distance_bipolar(a, b)
        assert np.array_equal(out, expected)

    def test_vector_shapes(self):
        rng = np.random.default_rng(2)
        a = (rng.integers(0, 2, size=64) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(3, 64)) * 2 - 1).astype(np.int8)
        assert binkern.hamming_distance_bipolar(a, a) == 0
        assert binkern.hamming_distance_bipolar(a, b).shape == (3,)
        assert binkern.hamming_distance_bipolar(b, a).shape == (3,)

    def test_perforation_matches_reference(self):
        rng = np.random.default_rng(3)
        a = (rng.integers(0, 2, size=(3, 100)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(4, 100)) * 2 - 1).astype(np.int8)
        expected = ref.hamming_distance(a, b, 10, 80, 3)
        out = binkern.hamming_distance_bipolar(a, b, 10, 80, 3)
        assert np.array_equal(out, expected)

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_packed_equals_reference_property(self, pair):
        a, b = pair
        assert np.array_equal(
            binkern.hamming_distance_bipolar(a, b), ref.hamming_distance(a, b)
        )

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_symmetry_property(self, pair):
        a, b = pair
        assert np.array_equal(
            binkern.hamming_distance_bipolar(a, b), binkern.hamming_distance_bipolar(b, a).T
        )

    def test_accepts_prepacked_operands(self):
        # Pre-packed lhs/rhs (any combination) produce the same distances
        # as the bipolar inputs — the serving plane binds constants packed.
        rng = np.random.default_rng(11)
        a = (rng.integers(0, 2, size=(4, 130)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(7, 130)) * 2 - 1).astype(np.int8)
        pa, pb = binkern.pack_bipolar(a), binkern.pack_bipolar(b)
        expected = ref.hamming_distance(a, b)
        for lhs, rhs in [(pa, b), (a, pb), (pa, pb)]:
            assert np.array_equal(binkern.hamming_distance_bipolar(lhs, rhs), expected)

    def test_prepacked_perforation_matches_reference(self):
        rng = np.random.default_rng(12)
        a = (rng.integers(0, 2, size=(3, 100)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(4, 100)) * 2 - 1).astype(np.int8)
        pa, pb = binkern.pack_bipolar(a), binkern.pack_bipolar(b)
        expected = ref.hamming_distance(a, b, 10, 80, 3)
        assert np.array_equal(binkern.hamming_distance_bipolar(pa, pb, 10, 80, 3), expected)

    def test_table_fallback_popcount_matches_native(self, monkeypatch):
        rng = np.random.default_rng(13)
        a = (rng.integers(0, 2, size=(4, 200)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(6, 200)) * 2 - 1).astype(np.int8)
        expected = binkern.hamming_distance_bipolar(a, b)
        monkeypatch.setattr(binkern, "popcount_words", binkern._popcount_words_table)
        assert np.array_equal(binkern.hamming_distance_bipolar(a, b), expected)


class TestBipolarDotAndCosine:
    def test_dot_identity(self):
        rng = np.random.default_rng(4)
        a = (rng.integers(0, 2, size=(3, 90)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(5, 90)) * 2 - 1).astype(np.int8)
        expected = a.astype(np.float64) @ b.astype(np.float64).T
        assert np.allclose(binkern.dot_bipolar(a, b), expected)

    def test_cossim_of_identical_vectors_is_one(self):
        rng = np.random.default_rng(5)
        a = (rng.integers(0, 2, size=(1, 256)) * 2 - 1).astype(np.int8)
        assert binkern.cossim_bipolar(a, a)[0, 0] == pytest.approx(1.0)

    def test_cossim_matches_reference_cossim(self):
        rng = np.random.default_rng(6)
        a = (rng.integers(0, 2, size=(3, 128)) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, size=(4, 128)) * 2 - 1).astype(np.int8)
        assert np.allclose(binkern.cossim_bipolar(a, b), ref.cossim(a, b), atol=1e-5)

    @given(bipolar_arrays())
    @settings(max_examples=25, deadline=None)
    def test_dot_hamming_identity_property(self, pair):
        a, b = pair
        dim = a.shape[1]
        dots = binkern.dot_bipolar(a, b)
        hams = binkern.hamming_distance_bipolar(a, b)
        assert np.allclose(dots, dim - 2 * hams)
