"""Tier-1 tests for shape-changing hot-swap (append-style online growth).

The contract mirrors PR 5's online-retraining bar, shifted from weights
to *shapes*: a served deployment appends rows to its growable
class-memory constants under load with zero drops, and every result —
before, during and after growth — is bit-identical to an offline rebuild
of the grown index.  The layers under test:

* :meth:`Servable.appended` — the validated growth step (append-only
  prefix, untouched non-growable constants, typed refusal without a
  rule);
* :meth:`RequestBroker.append` / :meth:`InferenceServer.append` — grow,
  re-trace for the new shapes, warm, version-bump, queue cutover;
* :class:`ShardedDeployment` with ``shard_capacity`` — growth past a
  shard boundary re-partitions live, scatter/gather still bit-identical
  (top-k included);
* the transport ``append`` op — streaming growth over the socket while
  concurrent query threads see zero errors;
* :class:`UpdateLog` growth records — replay rebuilds byte-identical
  grown constants, packed and unpacked, at the exact recorded versions;
* eager residency refresh — the packed class-memory gauges describe the
  installed bytes at swap time, not at the next ``stats()``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.apps import HDClassificationInference
from repro.apps.hashtable import HDHashtable
from repro.apps.hyperoms import HyperOMS
from repro.datasets import GenomicsConfig, IsoletConfig, make_genomics_dataset, make_isolet_like
from repro.datasets.genomics import base_indices
from repro.serving import InferenceServer, NotAppendableError, UpdateLog
from repro.serving.transport import ServingClient, TransportServer
from repro.transforms.pipeline import ApproximationConfig

DIM = 256
KMER = 8


@pytest.fixture(scope="module")
def genomics():
    return make_genomics_dataset(
        GenomicsConfig(
            genome_length=2000,
            bucket_size=200,
            read_length=60,
            n_reads=24,
            kmer_length=KMER,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def hashtable_app():
    return HDHashtable(dimension=DIM, seed=23)


def hashtable_servable(app, dataset, base_hvs, name="hd-hashtable"):
    table = app.encode_reference_buckets(dataset, base_hvs)
    return app.as_servable(
        table,
        dataset.config.read_length,
        KMER,
        base_hvs=base_hvs,
        name=name,
        append_length=dataset.config.bucket_size,
    )


def new_bucket_rows(dataset, count, seed):
    """Fresh reference sequences (as base-index rows) to grow the table."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, (count, dataset.config.bucket_size), dtype=np.int64)


def offline_grown_servable(app, dataset, base_hvs, all_rows, name="hd-hashtable"):
    """The ground truth: rebuild the full hash table from scratch with the
    per-read reference encoder, exactly as encode_reference_buckets does."""
    table = app.encode_reference_buckets(dataset, base_hvs)
    encode_read = app._make_read_encoder(base_hvs, KMER)
    extra = np.stack([np.sign(encode_read(row)) for row in all_rows]).astype(np.float32)
    return app.as_servable(
        np.vstack([table, extra]),
        dataset.config.read_length,
        KMER,
        base_hvs=base_hvs,
        name=name,
        append_length=dataset.config.bucket_size,
    )


def read_queries(dataset):
    return np.stack([base_indices(read) for read in dataset.reads])


class TestAppendedContract:
    def test_servable_without_rule_is_typed_refusal(self):
        dataset = make_isolet_like(
            IsoletConfig(n_features=32, n_classes=4, n_train=40, n_test=8, seed=3)
        )
        servable = HDClassificationInference(dimension=128).as_servable(dataset=dataset)
        assert not servable.appendable
        with pytest.raises(NotAppendableError, match="not appendable"):
            servable.appended(np.zeros((2, 32), dtype=np.float32))

    def test_row_shape_and_empty_batch_validated(self, hashtable_app, genomics):
        servable = hashtable_servable(
            hashtable_app, genomics, hashtable_app.make_base_hypervectors()
        )
        assert servable.appendable
        with pytest.raises(ValueError, match="non-empty"):
            servable.appended(np.zeros((0, genomics.config.bucket_size), dtype=np.int64))
        with pytest.raises(ValueError, match="shape"):
            servable.appended(np.zeros((2, 17), dtype=np.int64))

    def test_growth_is_append_only_and_rederives_signature(self, hashtable_app, genomics):
        base_hvs = hashtable_app.make_base_hypervectors()
        servable = hashtable_servable(hashtable_app, genomics, base_hvs)
        rows = new_bucket_rows(genomics, 3, seed=11)
        grown = servable.appended(rows)
        assert grown.name == servable.name
        assert grown.signature != servable.signature
        old = np.asarray(servable.constants["table"])
        new = np.asarray(grown.constants["table"])
        assert new.shape[0] == old.shape[0] + 3
        assert np.array_equal(new[: old.shape[0]], old)  # bit-identical prefix
        # The original servable is untouched — the old deployment keeps
        # serving it mid-swap.
        assert np.asarray(servable.constants["table"]).shape[0] == old.shape[0]


class TestLiveGrowth:
    def test_append_under_load_matches_offline_rebuild(self, hashtable_app, genomics):
        base_hvs = hashtable_app.make_base_hypervectors()
        servable = hashtable_servable(hashtable_app, genomics, base_hvs)
        queries = read_queries(genomics)
        rounds = [new_bucket_rows(genomics, 2, seed=s) for s in (1, 2)]

        server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=8)
        server.register(servable)
        with server:
            v0 = server.model_versions()["hd-hashtable"]
            for rows in rounds:
                futures = [server.submit("hd-hashtable", q) for q in queries]
                version = server.append("hd-hashtable", rows)
                assert version > v0
                v0 = version
                for future in futures:
                    future.result(timeout=30)  # nothing dropped across the swap
            after = [np.asarray(server.infer("hd-hashtable", q)) for q in queries]
            server.drain()
            stats = server.stats()
        assert stats.failures == 0 and stats.deadline_exceeded == 0

        offline = offline_grown_servable(
            hashtable_app, genomics, base_hvs, np.vstack(rounds)
        )
        # Same program family: the grown signature equals the offline
        # rebuild's (content-hashed over identical constants).
        grown = server.registry.get("hd-hashtable").servable
        assert grown.signature == offline.signature
        rebuilt = InferenceServer(workers=("cpu",), max_batch_size=8)
        rebuilt.register(offline)
        with rebuilt:
            expected = [np.asarray(rebuilt.infer("hd-hashtable", q)) for q in queries]
        for got, want in zip(after, expected):
            assert np.array_equal(got, want)


class TestShardedRebalance:
    def test_growth_across_shard_boundary_rebalances_live(self):
        app = HyperOMS(dimension=128, n_levels=8)
        rng = np.random.default_rng(2)
        library = rng.random((8, 16), dtype=np.float32)
        queries = rng.random((10, 16), dtype=np.float32)
        servable = app.as_servable(app.encode_library(library), 16)

        server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=8)
        server.register(servable, shards=2, shard_capacity=5)
        with server:
            assert server.registry.get("hyperoms").n_shards == 2
            rows = rng.random((4, 16), dtype=np.float32)  # 8 -> 12 rows: over 2*5
            futures = [server.submit("hyperoms", q) for q in queries]
            server.append("hyperoms", rows)
            for future in futures:
                future.result(timeout=30)
            grown = server.registry.get("hyperoms")
            assert grown.n_shards == 3  # re-partitioned live
            after = [np.asarray(server.infer("hyperoms", q)) for q in queries]
            topk = np.asarray(grown.run(queries, top_k=3).output)
            server.drain()
            assert server.stats().failures == 0

        # Offline rebuild of the grown library, deployed sharded: top-1
        # and top-k both bit-identical to the live-rebalanced deployment.
        offline = app.as_servable(app.encode_library(np.vstack([library, rows])), 16)
        assert grown.servable.signature == offline.signature
        rebuilt = InferenceServer(workers=("cpu",), max_batch_size=8)
        offline_dep = rebuilt.register(offline, shards=3)
        with rebuilt:
            expected = [np.asarray(rebuilt.infer("hyperoms", q)) for q in queries]
            expected_topk = np.asarray(offline_dep.run(queries, top_k=3).output)
        for got, want in zip(after, expected):
            assert np.array_equal(got, want)
        assert np.array_equal(topk, expected_topk)


class TestStreamingGrowthOverSocket:
    def test_concurrent_queries_and_appends_zero_drop(self, hashtable_app, genomics):
        base_hvs = hashtable_app.make_base_hypervectors()
        servable = hashtable_servable(hashtable_app, genomics, base_hvs)
        queries = read_queries(genomics)
        rounds = [new_bucket_rows(genomics, 2, seed=s) for s in (21, 22)]

        server = InferenceServer(
            workers=("cpu", "cpu"), max_batch_size=8, max_wait_seconds=0.002
        )
        server.register(servable)
        server.start()
        transport = TransportServer(server)
        host, port = transport.start()
        try:
            errors: list = []
            served = []
            stop = threading.Event()

            def hammer():
                try:
                    with ServingClient(host, port) as client:
                        while not stop.is_set():
                            index = len(served) % queries.shape[0]
                            served.append(
                                int(np.asarray(client.infer("hd-hashtable", queries[index])))
                            )
                except Exception as exc:  # noqa: BLE001 - surfaced by the assert
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            with ServingClient(host, port) as writer:
                versions = [writer.append("hd-hashtable", rows) for rows in rounds]
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert versions == sorted(versions) and len(set(versions)) == len(versions)
            assert len(served) > 0

            with ServingClient(host, port) as client:
                after = [
                    np.asarray(client.infer("hd-hashtable", q)) for q in queries
                ]
            stats = server.stats()
            assert stats.failures == 0 and stats.deadline_exceeded == 0
        finally:
            transport.stop()
            server.stop()

        offline = offline_grown_servable(
            hashtable_app, genomics, base_hvs, np.vstack(rounds)
        )
        rebuilt = InferenceServer(workers=("cpu",), max_batch_size=8)
        rebuilt.register(offline)
        with rebuilt:
            expected = [np.asarray(rebuilt.infer("hd-hashtable", q)) for q in queries]
        for got, want in zip(after, expected):
            assert np.array_equal(got, want)


class TestGrowthLogReplay:
    def test_replay_rebuilds_packed_and_unpacked_bytes(self, tmp_path):
        app = HyperOMS(dimension=128, n_levels=8)
        rng = np.random.default_rng(5)
        library = rng.random((6, 16), dtype=np.float32)
        rounds = [rng.random((3, 16), dtype=np.float32) for _ in range(2)]
        config = ApproximationConfig(binarize=True)

        log = UpdateLog(tmp_path / "growth.log")
        live = InferenceServer(workers=("cpu",), max_batch_size=8, update_log=log)
        live.register(app.as_servable(app.encode_library(library), 16), config=config)
        with live:
            live_versions = [live.append("hyperoms", rows) for rows in rounds]
        live_dep = live.registry.get("hyperoms")
        live_unpacked = np.asarray(live_dep.servable.constants["library"])
        live_packed = live_dep._packed_constants["library"]
        assert [r.version for r in log.read_all()] == live_versions

        restarted = InferenceServer(workers=("cpu",), max_batch_size=8, update_log=log)
        restarted.register(app.as_servable(app.encode_library(library), 16), config=config)
        with restarted:
            replayed_versions = log.replay(restarted)
        assert replayed_versions == live_versions
        assert len(log) == len(rounds)  # replay did not re-append
        dep = restarted.registry.get("hyperoms")
        unpacked = np.asarray(dep.servable.constants["library"])
        packed = dep._packed_constants["library"]
        # Byte-identical at the exact recorded versions: unpacked floats
        # and the repacked uint64 words both.
        assert unpacked.tobytes() == live_unpacked.tobytes()
        assert np.asarray(packed, dtype=np.uint64).tobytes() == np.asarray(
            live_packed, dtype=np.uint64
        ).tobytes()


class TestEagerResidencyRefresh:
    def _recorded_residency(self, server, name):
        """The residency document the metrics hold *right now* — read from
        the collector directly, so a lazy stats()-time refresh cannot mask
        staleness."""
        metrics = server.broker.metrics
        with metrics._lock:
            return metrics._model(name).residency

    def test_gauges_fresh_at_register_and_append_time(self):
        app = HyperOMS(dimension=128, n_levels=8)
        rng = np.random.default_rng(9)
        library = rng.random((6, 16), dtype=np.float32)
        servable = app.as_servable(app.encode_library(library), 16)
        config = ApproximationConfig(binarize=True)

        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        # warm=False: without the eager ensure_packed at install time the
        # residency document would stay None until the first compile.
        server.register(servable, config=config, warm=False)
        doc = self._recorded_residency(server, "hyperoms")
        assert doc is not None and doc["packed"]
        before_bytes = doc["class_memory_unpacked_bytes"]
        assert before_bytes == np.asarray(servable.constants["library"]).nbytes

        with server:
            server.append("hyperoms", rng.random((3, 16), dtype=np.float32))
        doc = self._recorded_residency(server, "hyperoms")
        grown = server.registry.get("hyperoms").servable.constants["library"]
        # Refreshed at swap time (no stats() call in between): the gauges
        # describe the grown constants' bytes already.
        assert doc["class_memory_unpacked_bytes"] == np.asarray(grown).nbytes
        assert doc["class_memory_unpacked_bytes"] > before_bytes
