"""Tests for the accelerator device simulators and the Jetson latency model."""

import numpy as np
import pytest

from repro.accelerators import (
    AcceleratorConfig,
    DigitalASICParameters,
    DigitalHDCASIC,
    JetsonOrinModel,
    JetsonParameters,
    ReRAMAccelerator,
    ReRAMParameters,
)
from repro.accelerators.interface import DeviceError


def make_config(dim=256, features=32, classes=4):
    return AcceleratorConfig(dimension=dim, features=features, classes=classes)


@pytest.fixture(params=[DigitalHDCASIC, ReRAMAccelerator])
def device(request):
    return request.param()


class TestFunctionalInterface:
    def test_operations_require_initialization(self, device):
        with pytest.raises(DeviceError):
            device.allocate_base_mem(np.ones((4, 4)))
        with pytest.raises(DeviceError):
            device.execute_inference()

    def test_execution_requires_staged_data(self, device):
        device.initialize_device(make_config())
        with pytest.raises(DeviceError):
            device.execute_encode()
        device.allocate_base_mem(np.ones((256, 32), dtype=np.float32))
        with pytest.raises(DeviceError):
            device.execute_encode()

    def test_class_memory_shape_checked(self, device):
        device.initialize_device(make_config(classes=4))
        with pytest.raises(DeviceError):
            device.allocate_class_mem(np.zeros((5, 256)))

    def test_feature_shape_checked(self, device):
        device.initialize_device(make_config(features=32))
        with pytest.raises(DeviceError):
            device.allocate_feature_mem(np.zeros(33))

    def test_encode_produces_bipolar_hypervector(self, device):
        rng = np.random.default_rng(0)
        device.initialize_device(make_config())
        device.allocate_base_mem((rng.integers(0, 2, (256, 32)) * 2 - 1).astype(np.float32))
        device.allocate_feature_mem(rng.normal(size=32).astype(np.float32))
        encoded = device.execute_encode()
        assert encoded.shape == (256,)
        assert set(np.unique(encoded)) <= {-1, 1}
        assert device.counters.encodes == 1
        assert device.counters.device_seconds > 0

    def test_counters_accumulate_and_reset(self, device):
        rng = np.random.default_rng(1)
        device.initialize_device(make_config())
        device.allocate_base_mem((rng.integers(0, 2, (256, 32)) * 2 - 1).astype(np.float32))
        device.allocate_class_mem(np.zeros((4, 256), dtype=np.float32))
        for label in range(4):
            device.allocate_feature_mem(rng.normal(size=32).astype(np.float32))
            device.execute_retrain(label)
        assert device.counters.train_iterations == 4
        first_total = device.counters.device_seconds
        assert first_total > 0
        device.initialize_device(make_config())
        assert device.counters.device_seconds == 0

    def test_training_then_inference_recovers_labels(self, device):
        rng = np.random.default_rng(2)
        config = make_config(dim=512, features=24, classes=3)
        prototypes = rng.normal(size=(3, 24))
        device.initialize_device(config)
        device.allocate_base_mem((rng.integers(0, 2, (512, 24)) * 2 - 1).astype(np.float32))
        device.allocate_class_mem(np.zeros((3, 512), dtype=np.float32))
        for _ in range(40):
            label = int(rng.integers(0, 3))
            sample = prototypes[label] + 0.2 * rng.normal(size=24)
            device.allocate_feature_mem(sample.astype(np.float32))
            device.execute_retrain(label)
        correct = 0
        for _ in range(20):
            label = int(rng.integers(0, 3))
            sample = prototypes[label] + 0.2 * rng.normal(size=24)
            device.allocate_feature_mem(sample.astype(np.float32))
            correct += int(device.execute_inference() == label)
        assert correct >= 16
        classes = device.read_class_mem()
        assert classes.shape == (3, 512)
        assert device.counters.bytes_from_device > 0

    def test_transfer_accounting_uses_host_link(self, device):
        device.initialize_device(make_config())
        base = np.ones((256, 32), dtype=np.float32)
        device.allocate_base_mem(base)
        assert device.counters.bytes_to_device > 0
        assert device.counters.transfer_seconds > 0


class TestDigitalASIC:
    def test_cyclic_projection_is_deterministic(self):
        rng = np.random.default_rng(3)
        base = (rng.integers(0, 2, (128, 16)) * 2 - 1).astype(np.float32)
        features = rng.normal(size=16).astype(np.float32)
        outputs = []
        for _ in range(2):
            device = DigitalHDCASIC()
            device.initialize_device(make_config(dim=128, features=16))
            device.allocate_base_mem(base)
            device.allocate_feature_mem(features)
            outputs.append(device.execute_encode())
        assert np.array_equal(outputs[0], outputs[1])

    def test_timing_scales_with_dimension(self):
        small, large = DigitalHDCASIC(), DigitalHDCASIC()
        small.initialize_device(make_config(dim=256))
        large.initialize_device(make_config(dim=4096))
        assert large._encode_time() > small._encode_time()
        assert large._hamming_time() > small._hamming_time()

    def test_power_derived_from_tops_per_watt(self):
        params = DigitalASICParameters()
        assert params.watts > 0
        assert DigitalHDCASIC(params).device_power_watts == pytest.approx(params.watts)


class TestReRAM:
    def test_progressive_hamming_early_termination(self):
        rng = np.random.default_rng(4)
        device = ReRAMAccelerator(ReRAMParameters(hamming_chunk=64))
        config = make_config(dim=1024, features=32, classes=3)
        device.initialize_device(config)
        device.allocate_base_mem(np.ones((1024, 32), dtype=np.float32))
        # Classes that differ maximally so the ranking settles early.
        classes = np.ones((3, 1024), dtype=np.float32)
        classes[1] = -1.0
        classes[2, ::2] = -1.0
        device.allocate_class_mem(classes)
        device._encoded_mem = np.ones(1024, dtype=np.int8)
        device.allocate_encoded_mem(np.ones(1024, dtype=np.int8))
        label = device.execute_inference_encoded()
        assert label == 0
        assert device.mean_progressive_fraction < 1.0

    def test_tensorized_encoding_factors_cover_dimensions(self):
        d1, d2, f1, f2 = ReRAMAccelerator._factor_dims(2048, 617)
        assert d1 * d2 >= 2048
        assert f1 * f2 >= 617

    def test_one_shot_training_bundles_samples(self):
        rng = np.random.default_rng(5)
        device = ReRAMAccelerator()
        device.initialize_device(make_config(dim=256, features=16, classes=2))
        device.allocate_base_mem(np.ones((256, 16), dtype=np.float32))
        device.allocate_class_mem(np.zeros((2, 256), dtype=np.float32))
        sample = rng.normal(size=16).astype(np.float32)
        device.allocate_feature_mem(sample)
        device.execute_retrain(1)
        classes = device.read_class_mem()
        assert np.any(classes[1] != 0)
        assert np.all(classes[0] == 0)


class TestJetsonModel:
    def test_times_positive_and_monotonic_in_dimension(self):
        model = JetsonOrinModel()
        assert model.encode_time(2048, 617) > 0
        assert model.encode_time(4096, 617) > model.encode_time(1024, 617)
        assert model.similarity_time(4096, 26) > model.similarity_time(1024, 26)

    def test_stage_times_scale_with_samples_and_epochs(self):
        model = JetsonOrinModel()
        single = model.training_stage_time(1, 1, 2048, 617, 26)
        assert model.training_stage_time(100, 1, 2048, 617, 26) == pytest.approx(100 * single)
        assert model.training_stage_time(100, 3, 2048, 617, 26) == pytest.approx(300 * single)

    def test_launch_overhead_dominates_tiny_kernels(self):
        params = JetsonParameters(kernel_launch_seconds=1e-3)
        model = JetsonOrinModel(params)
        assert model.update_time(16) >= 1e-3

    def test_inference_time_is_encode_plus_similarity(self):
        model = JetsonOrinModel()
        expected = model.encode_time(2048, 617) + model.similarity_time(2048, 26)
        assert model.inference_time(2048, 617, 26) == pytest.approx(expected)
