"""Tests for compiled-program cache persistence (save/load + warm hits).

The headline scenario is the warm restart: a server saves its cache,
"another process" (a fresh registry + cache, loaded from disk) registers
the same model, and serving proceeds with **zero** trace/lower calls and
bit-identical predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.backends.base as backends_base
from repro import hdcpp as H
from repro.apps import HDClassificationInference
from repro.backends import CPUBackend
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import CompiledProgramCache, InferenceServer, ModelRegistry, Servable

DIM = 256
FEATURES = 64
CLASSES = 8


@pytest.fixture(scope="module")
def dataset():
    return make_isolet_like(
        IsoletConfig(n_features=FEATURES, n_classes=CLASSES, n_train=200, n_test=60, seed=7)
    )


@pytest.fixture(scope="module")
def servable(dataset):
    app = HDClassificationInference(dimension=DIM, similarity="hamming")
    return app.as_servable(dataset=dataset)


def simple_program(batch: int, name: str = "persist_probe") -> H.Program:
    prog = H.Program(f"{name}_b{batch}")

    @prog.entry(H.hm(batch, DIM))
    def main(queries):
        return H.sign(queries)

    return prog


class TestSaveLoadRoundTrip:
    def test_round_trip_restores_entries_and_counts_warm_hits(self, tmp_path):
        cache = CompiledProgramCache()
        backend = CPUBackend()
        key = cache.make_key("sig-a", "cpu", None, batch_size=4)
        cache.get_or_compile(key, backend, lambda: simple_program(4))
        assert cache.save(tmp_path / "cache.pkl") == 1

        restored = CompiledProgramCache()
        assert restored.load(tmp_path / "cache.pkl") == 1
        assert len(restored) == 1 and key in restored

        def must_not_compile():
            raise AssertionError("warm entry recompiled")

        compiled = restored.get_or_compile(key, backend, must_not_compile)
        out = compiled.run(queries=np.zeros((4, DIM), dtype=np.float32) - 2.0)
        assert np.array_equal(np.asarray(out.output), -np.ones((4, DIM), dtype=np.float32))
        assert restored.stats.misses == 0
        assert restored.stats.hits == 1
        assert restored.stats.warm_hits == 1  # the hit came off disk

    def test_cold_hits_do_not_count_as_warm(self):
        cache = CompiledProgramCache()
        backend = CPUBackend()
        key = cache.make_key("sig-b", "cpu", None, batch_size=2)
        cache.get_or_compile(key, backend, lambda: simple_program(2))
        cache.get_or_compile(key, backend, lambda: simple_program(2))
        assert cache.stats.hits == 1 and cache.stats.warm_hits == 0

    def test_unserializable_entries_skipped_not_fatal(self, tmp_path):
        """Programs closing over Python callables cannot pickle; save skips
        them and persists the rest."""
        cache = CompiledProgramCache()
        backend = CPUBackend()

        def closure_program(batch: int) -> H.Program:
            prog = H.Program(f"closure_b{batch}")

            @prog.entry(H.hm(batch, DIM))
            def main(queries):
                return H.parallel_map(lambda row: H.sign_flip(row), queries)

            return prog

        cache.get_or_compile(
            cache.make_key("sig-closure", "cpu", None, batch_size=2), backend,
            lambda: closure_program(2),
        )
        cache.get_or_compile(
            cache.make_key("sig-plain", "cpu", None, batch_size=2), backend,
            lambda: simple_program(2, name="plain"),
        )
        assert cache.save(tmp_path / "cache.pkl") == 1  # closure entry skipped
        restored = CompiledProgramCache()
        assert restored.load(tmp_path / "cache.pkl") == 1

    def test_load_keeps_live_entries(self, tmp_path):
        """A live compile beats a stale disk entry under the same key."""
        cache = CompiledProgramCache()
        backend = CPUBackend()
        key = cache.make_key("sig-live", "cpu", None, batch_size=2)
        cache.get_or_compile(key, backend, lambda: simple_program(2))
        cache.save(tmp_path / "cache.pkl")
        live = cache._entries[key]
        assert cache.load(tmp_path / "cache.pkl") == 0  # key already present
        assert cache._entries[key] is live

    def test_load_rejects_non_cache_files(self, tmp_path):
        bogus = tmp_path / "bogus.pkl"
        import pickle

        bogus.write_bytes(pickle.dumps({"format": 999}))
        with pytest.raises(ValueError):
            CompiledProgramCache().load(bogus)

    def test_capacity_respected_on_load(self, tmp_path):
        cache = CompiledProgramCache()
        backend = CPUBackend()
        for batch in (1, 2, 4):
            cache.get_or_compile(
                cache.make_key("sig-cap", "cpu", None, batch_size=batch),
                backend,
                lambda b=batch: simple_program(b),
            )
        cache.save(tmp_path / "cache.pkl")
        bounded = CompiledProgramCache(capacity=2)
        bounded.load(tmp_path / "cache.pkl")
        assert len(bounded) == 2
        assert bounded.stats.evictions == 1


class TestWarmRestart:
    def test_restart_with_warm_cache_skips_compilation(
        self, tmp_path, dataset, servable, monkeypatch
    ):
        """register → save → fresh registry → load → register again:
        zero trace calls, zero lower/verify calls, identical predictions."""
        first = ModelRegistry()
        first.register(servable, warm_batch_sizes=(1, 8))
        expected = np.asarray(
            first.get(servable.name).run(dataset.test_features[:8]).output, dtype=np.int64
        )
        saved = first.save_cache(tmp_path / "serving-cache.pkl")
        assert saved == 2  # one artifact per warmed bucket

        # --- "new process": fresh registry, fresh cache, loaded from disk ---
        restarted = ModelRegistry()
        assert restarted.load_cache(tmp_path / "serving-cache.pkl") == 2

        calls = {"trace": 0, "lower": 0}
        real_lower = backends_base.lower_program

        def counting_lower(program):
            calls["lower"] += 1
            return real_lower(program)

        monkeypatch.setattr(backends_base, "lower_program", counting_lower)

        counted = Servable(
            name=servable.name,
            build_program=lambda batch: (
                calls.__setitem__("trace", calls["trace"] + 1) or servable.build_program(batch)
            ),
            constants=servable.constants,
            query_param=servable.query_param,
            sample_shape=servable.sample_shape,
            signature=servable.signature,  # same model identity => same keys
            supported_targets=servable.supported_targets,
        )
        deployment = restarted.register(counted, warm_batch_sizes=(1, 8))
        predictions = np.asarray(deployment.run(dataset.test_features[:8]).output, dtype=np.int64)

        assert calls == {"trace": 0, "lower": 0}  # nothing recompiled
        assert restarted.cache.stats.misses == 0
        assert restarted.cache.stats.warm_hits >= 2  # both buckets served warm
        assert np.array_equal(predictions, expected)

    def test_restarted_server_serves_warm(self, tmp_path, dataset, servable):
        """End to end through the InferenceServer facade: a restarted
        server loads the cache and serves with zero recompiles."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        server.register(servable, warm="full")  # every bucket lands in the cache
        with server:
            expected = [
                int(np.asarray(r)) for r in server.infer_many(
                    servable.name, list(dataset.test_features[:12])
                )
            ]
        assert server.save_cache(tmp_path / "server-cache.pkl") >= 2

        restarted = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        restarted.load_cache(tmp_path / "server-cache.pkl")
        restarted.register(servable, warm="full")
        with restarted:
            served = [
                int(np.asarray(r)) for r in restarted.infer_many(
                    servable.name, list(dataset.test_features[:12])
                )
            ]
            restarted.drain()
            stats = restarted.stats()
        assert served == expected
        assert stats.cache_misses == 0  # the acceptance criterion: no recompiles
        assert stats.cache_warm_hits >= 2
