"""Unit tests for the HDC++ type system."""

import numpy as np
import pytest

from repro.hdcpp import types as T


class TestElementTypes:
    def test_known_names(self):
        assert T.element_type_from_name("int8_t") is T.int8
        assert T.element_type_from_name("float") is T.float32
        assert T.element_type_from_name("double") is T.float64
        assert T.element_type_from_name("bit") is T.binary

    def test_aliases(self):
        assert T.element_type_from_name("float32") is T.float32
        assert T.element_type_from_name("binary") is T.binary
        assert T.element_type_from_name("bipolar") is T.binary
        assert T.element_type_from_name("int32") is T.int32

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            T.element_type_from_name("int128_t")

    def test_bit_widths(self):
        assert T.int8.bits == 8
        assert T.int64.bits == 64
        assert T.float32.bits == 32
        assert T.binary.bits == 1

    def test_numpy_dtypes(self):
        assert T.int16.numpy_dtype == np.dtype(np.int16)
        assert T.float64.numpy_dtype == np.dtype(np.float64)
        # Binary is stored unpacked as int8.
        assert T.binary.numpy_dtype == np.dtype(np.int8)

    def test_bytes_per_element(self):
        assert T.float32.bytes_per_element == 4.0
        assert T.binary.bytes_per_element == pytest.approx(1 / 8)

    def test_flags(self):
        assert T.float32.is_float and not T.float32.is_binary
        assert T.binary.is_binary and not T.binary.is_float
        assert not T.int32.is_float


class TestShapedTypes:
    def test_hypervector_type(self):
        hv = T.hv(2048)
        assert hv.dim == 2048
        assert hv.shape == (2048,)
        assert hv.num_elements == 2048
        assert hv.element is T.float32

    def test_hypermatrix_type(self):
        hm = T.hm(26, 2048, T.int8)
        assert hm.shape == (26, 2048)
        assert hm.num_elements == 26 * 2048
        assert hm.row_type == T.hv(2048, T.int8)

    def test_num_bytes_accounts_for_element_width(self):
        assert T.hv(1024, T.float32).num_bytes == 4096
        assert T.hv(1024, T.binary).num_bytes == 128
        assert T.hm(4, 8, T.int16).num_bytes == 64

    def test_with_element(self):
        hv = T.hv(64).with_element(T.binary)
        assert hv.element is T.binary
        assert hv.dim == 64
        hm = T.hm(2, 3).with_element(T.int8)
        assert hm.element is T.int8
        assert hm.shape == (2, 3)

    def test_scalar_and_index_types(self):
        assert T.scalar().shape == ()
        assert T.ScalarType(T.int32).num_elements == 1
        assert T.IndexType().shape == ()
        iv = T.IndexVectorType(10)
        assert iv.shape == (10,)
        assert iv.with_element(T.int32).element is T.int32

    def test_types_are_hashable_value_objects(self):
        assert T.hv(16) == T.hv(16)
        assert T.hv(16) != T.hv(17)
        assert len({T.hv(16), T.hv(16), T.hm(2, 16)}) == 2

    def test_repr_contains_dimensions(self):
        assert "2048" in repr(T.hv(2048))
        assert "26" in repr(T.hm(26, 2048))
