"""Tests for the HDC++ tracing frontend (Program / TracedFunction / Value)."""

import numpy as np
import pytest

from repro import hdcpp as H
from repro.ir.ops import Opcode


class TestProgramDefinition:
    def test_define_records_ops_and_results(self):
        prog = H.Program("p")

        @prog.define(H.hv(8), H.hm(4, 8))
        def infer(query, classes):
            return H.arg_min(H.hamming_distance(query, classes))

        assert "infer" in prog.functions
        traced = prog.function("infer")
        assert [op.opcode for op in traced.ops] == [Opcode.HAMMING_DISTANCE, Opcode.ARG_MIN]
        assert len(traced.params) == 2
        assert len(traced.results) == 1
        assert traced.results[0].type == H.IndexType()

    def test_entry_marks_entry_point(self):
        prog = H.Program("p")

        @prog.entry(H.hv(4))
        def main(x):
            return H.sign(x)

        assert prog.entry_name == "main"
        assert prog.entry_function.name == "main"

    def test_single_function_is_implicit_entry(self):
        prog = H.Program("p")

        @prog.define(H.hv(4))
        def only(x):
            return H.sign(x)

        assert prog.entry_function.name == "only"

    def test_missing_entry_with_multiple_functions(self):
        prog = H.Program("p")

        @prog.define(H.hv(4))
        def a(x):
            return H.sign(x)

        @prog.define(H.hv(4))
        def b(x):
            return H.sign_flip(x)

        with pytest.raises(H.TracingError):
            _ = prog.entry_function

    def test_duplicate_function_name_rejected(self):
        prog = H.Program("p")

        @prog.define(H.hv(4))
        def fn(x):
            return H.sign(x)

        with pytest.raises(H.TracingError):

            @prog.define(H.hv(4), name="fn")
            def fn2(x):
                return H.sign(x)

    def test_parameter_count_mismatch(self):
        prog = H.Program("p")
        with pytest.raises(H.TracingError):

            @prog.define(H.hv(4), H.hv(4))
            def fn(x):
                return H.sign(x)

    def test_multiple_results(self):
        prog = H.Program("p")

        @prog.define(H.hv(4), H.hm(2, 4))
        def fn(x, m):
            return H.sign(x), H.matrix_transpose(m)

        assert len(prog.function("fn").results) == 2

    def test_invalid_return_value(self):
        prog = H.Program("p")
        with pytest.raises(H.TracingError):

            @prog.define(H.hv(4))
            def fn(x):
                return 42

    def test_all_operations_spans_functions(self):
        prog = H.Program("p")

        @prog.define(H.hv(4))
        def a(x):
            return H.sign(x)

        @prog.define(H.hv(4))
        def b(x):
            return H.sign_flip(H.sign(x))

        assert len(prog.all_operations()) == 3


class TestTracedValues:
    def test_values_have_types_and_producers(self):
        prog = H.Program("p")

        @prog.define(H.hv(8), H.hm(4, 8))
        def fn(query, rp):
            return H.matmul(query, rp)

        op = prog.function("fn").ops[0]
        assert op.result.producer is op
        assert op.result.type == H.hv(4)
        assert op.operand_types() == [H.hv(8), H.hm(4, 8)]

    def test_mixing_concrete_and_symbolic_rejected(self):
        prog = H.Program("p")
        with pytest.raises(H.TracingError):

            @prog.define(H.hv(8))
            def fn(x):
                return H.add(x, H.HyperVector(np.zeros(8, dtype=np.float32)))

    def test_symbolic_value_outside_trace_rejected(self):
        prog = H.Program("p")

        @prog.define(H.hv(8))
        def fn(x):
            return H.sign(x)

        param = prog.function("fn").params[0]
        with pytest.raises(H.TracingError):
            H.sign(param)

    def test_red_perf_records_directive(self):
        prog = H.Program("p")

        @prog.define(H.hv(8), H.hm(4, 8))
        def fn(q, c):
            d = H.hamming_distance(q, c)
            H.red_perf(d, 0, 4, 2)
            return H.arg_min(d)

        ops = prog.function("fn").ops
        assert ops[1].opcode == Opcode.RED_PERF
        assert ops[1].attrs == {"begin": 0, "end": 4, "stride": 2}
        assert ops[1].result is None

    def test_stage_ops_record_impl_reference(self):
        prog = H.Program("p")

        @prog.define(H.hv(8), H.hm(4, 16), H.hm(16, 8))
        def infer_one(q, c, rp):
            return H.arg_min(H.hamming_distance(H.sign(H.matmul(q, rp)), c))

        @prog.entry(H.hm(10, 8), H.hm(4, 16), H.hm(16, 8))
        def main(queries, classes, rp):
            return H.inference_loop(infer_one, queries, classes, encoder=rp)

        stage_op = prog.function("main").ops[0]
        assert stage_op.opcode == Opcode.INFERENCE_LOOP
        assert stage_op.attrs["impl"] == "infer_one"
        assert stage_op.attrs["has_encoder"] is True
        assert stage_op.result.type == H.IndexVectorType(10)

    def test_parallel_map_records_instances_via_type(self):
        prog = H.Program("p")

        def encode(row):
            return row

        @prog.entry(H.hm(12, 8))
        def main(rows):
            return H.parallel_map(encode, rows, output_dim=32)

        op = prog.function("main").ops[0]
        assert op.opcode == Opcode.PARALLEL_MAP
        assert op.result.type == H.hm(12, 32)

    def test_printer_renders_program(self):
        from repro.ir.printer import print_program

        prog = H.Program("render_me")

        @prog.entry(H.hv(8), H.hm(4, 8))
        def fn(q, c):
            return H.arg_min(H.hamming_distance(q, c))

        text = print_program(prog)
        assert "render_me" in text
        assert "hdc.hamming_distance" in text
        assert "hdc.arg_min" in text
