"""Tests for the replayable update log (repro.serving.update_log).

The central contract — same bar as the PR 5 online-retraining tests:
because the online update rule is a pure function of (constants,
samples, labels), persisting the labelled mini-batches behind each
served version *is* persisting the model.  A restarted server that
registers the same baseline and replays the log must end at the same
registry versions with bit-identical constants and predictions.  The
negative side: genuinely corrupt logs (malformed complete headers,
unsafe dtypes) fail with the typed :class:`UpdateLogError`; a *torn
final record* — the only damage a crash mid-append can cause, since
each record is one write — is recovered from by stopping at the last
valid record with a warning, and the next append truncates the torn
bytes; and a replay into a target that is not at the log's baseline is
detected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import HDClassificationInference
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import InferenceServer, UpdateLog, UpdateLogError


@pytest.fixture(scope="module")
def dataset():
    return make_isolet_like(
        IsoletConfig(n_features=48, n_classes=6, n_train=180, n_test=48, seed=11)
    )


def make_servable(dataset):
    app = HDClassificationInference(dimension=256, similarity="hamming")
    return app.as_servable(dataset=dataset, name="isolet")


def rounds(dataset, n=3):
    return [
        (dataset.train_features[i::n], dataset.train_labels[i::n].astype(np.int64))
        for i in range(n)
    ]


class TestAppendAndRead:
    def test_round_trips_records_bit_exactly(self, tmp_path, dataset):
        log = UpdateLog(tmp_path / "u.log")
        for index, (samples, labels) in enumerate(rounds(dataset)):
            seq = log.append("isolet", samples, labels, version=index + 2)
            assert seq == index + 1
        records = log.read_all()
        assert [r.seq for r in records] == [1, 2, 3]
        assert [r.version for r in records] == [2, 3, 4]
        for record, (samples, labels) in zip(records, rounds(dataset)):
            assert record.model == "isolet"
            assert record.samples.dtype == samples.dtype
            assert np.array_equal(record.samples, samples)
            assert np.array_equal(record.labels, labels)

    def test_growth_records_round_trip_typed(self, tmp_path):
        """Append records interleave with re-training records, carry the
        raw row bytes, and come back as the typed AppendRecord."""
        from repro.serving.update_log import AppendRecord, UpdateRecord

        log = UpdateLog(tmp_path / "u.log")
        rows = np.arange(12, dtype=np.int64).reshape(3, 4)
        log.append(
            "m", np.zeros((1, 2), dtype=np.float32), np.zeros(1, dtype=np.int64), version=2
        )
        assert log.append_rows("m", rows, version=3) == 2
        records = log.read_all()
        assert isinstance(records[0], UpdateRecord)
        assert isinstance(records[1], AppendRecord)
        assert records[1].seq == 2
        assert records[1].version == 3
        assert records[1].rows.dtype == np.int64
        assert np.array_equal(records[1].rows, rows)

    def test_missing_file_is_an_empty_log(self, tmp_path):
        log = UpdateLog(tmp_path / "never-created.log")
        assert len(log) == 0
        assert log.read_all() == []
        assert log.models() == []

    def test_models_in_first_seen_order(self, tmp_path):
        log = UpdateLog(tmp_path / "u.log")
        batch = np.zeros((2, 4), dtype=np.float32)
        labels = np.zeros(2, dtype=np.int64)
        for model in ("b", "a", "b"):
            log.append(model, batch, labels)
        assert log.models() == ["b", "a"]

    def test_clear_deletes_and_restarts(self, tmp_path):
        log = UpdateLog(tmp_path / "u.log")
        log.append("m", np.zeros((1, 2), dtype=np.float32), np.zeros(1, dtype=np.int64))
        assert len(log) == 1
        log.clear()
        assert len(log) == 0
        assert log.append("m", np.zeros((1, 2), dtype=np.float32), np.zeros(1, dtype=np.int64)) == 1


class TestCorruptLogs:
    def _one_record_log(self, tmp_path):
        log = UpdateLog(tmp_path / "u.log")
        log.append(
            "m",
            np.arange(8, dtype=np.float32).reshape(2, 4),
            np.array([0, 1], dtype=np.int64),
        )
        return log

    def test_torn_final_payload_recovers_with_warning(self, tmp_path):
        """A crash mid-append tears the last record's payload; reads warn
        and stop at the last valid record instead of raising."""
        log = self._one_record_log(tmp_path)
        log.append(
            "m",
            np.arange(8, dtype=np.float32).reshape(2, 4),
            np.array([1, 0], dtype=np.int64),
        )
        data = log.path.read_bytes()
        log.path.write_bytes(data[:-5])
        with pytest.warns(RuntimeWarning, match="torn"):
            records = log.read_all()
        assert [r.seq for r in records] == [1]

    def test_torn_final_header_recovers_with_warning(self, tmp_path):
        """A crash can also land mid-header (no trailing newline)."""
        log = self._one_record_log(tmp_path)
        with log.path.open("ab") as handle:
            handle.write(b'{"model": "m", "seq": 2, "vers')
        with pytest.warns(RuntimeWarning, match="torn"):
            records = log.read_all()
        assert [r.seq for r in records] == [1]

    def test_append_truncates_a_torn_tail_first(self, tmp_path):
        """The next append repairs the file: torn bytes are truncated to
        the last valid record, then the new record lands cleanly."""
        log = self._one_record_log(tmp_path)
        data = log.path.read_bytes()
        log.path.write_bytes(data + b'{"model": "m", "seq": 2')
        with pytest.warns(RuntimeWarning, match="truncating"):
            seq = log.append(
                "m",
                np.arange(8, dtype=np.float32).reshape(2, 4),
                np.array([0, 1], dtype=np.int64),
            )
        assert seq == 2
        records = log.read_all()  # clean again: no warning, both records
        assert [r.seq for r in records] == [1, 2]

    def test_malformed_header_is_typed_error(self, tmp_path):
        log = self._one_record_log(tmp_path)
        log.path.write_bytes(b"not json at all\n" + b"\x00" * 16)
        with pytest.raises(UpdateLogError, match="malformed"):
            log.read_all()

    def test_missing_array_header_is_typed_error(self, tmp_path):
        log = UpdateLog(tmp_path / "u.log")
        log.path.write_bytes(b'{"model": "m", "seq": 1}\n')
        with pytest.raises(UpdateLogError, match="missing"):
            log.read_all()

    def test_object_dtype_is_rejected(self, tmp_path):
        log = UpdateLog(tmp_path / "u.log")
        header = (
            b'{"model": "m", "seq": 1, "version": null, '
            b'"samples": {"dtype": "|O", "shape": [1]}, '
            b'"labels": {"dtype": "<i8", "shape": [1]}}\n'
        )
        log.path.write_bytes(header + b"\x00" * 16)
        with pytest.raises(UpdateLogError, match="dtype"):
            log.read_all()


class TestReplayRebuildsServedState:
    def test_restarted_server_is_bit_identical(self, tmp_path, dataset):
        """Live-train a server with the log attached, then rebuild a
        fresh server from the same baseline by replaying the log: same
        versions, bit-identical class memories and predictions."""
        servable = make_servable(dataset)
        queries = list(dataset.test_features)

        log = UpdateLog(tmp_path / "u.log")
        live = InferenceServer(workers=("cpu",), update_log=log)
        live.register(servable)
        with live:
            live_versions = [
                live.update("isolet", samples, labels) for samples, labels in rounds(dataset)
            ]
            live_predictions = live.infer_many("isolet", queries)
        assert live_versions == [2, 3, 4]
        assert [r.version for r in log.read_all()] == [2, 3, 4]

        # "Restart": a fresh process registers the same baseline servable
        # and replays the persisted log through the same update path.
        restarted = InferenceServer(workers=("cpu",), update_log=log)
        restarted.register(make_servable(dataset))
        with restarted:
            replayed_versions = log.replay(restarted)
            replayed_predictions = restarted.infer_many("isolet", queries)

        assert replayed_versions == live_versions
        live_classes = live.registry.get("isolet").servable.constants["class_hvs"]
        replayed_classes = restarted.registry.get("isolet").servable.constants["class_hvs"]
        assert np.array_equal(live_classes, replayed_classes)
        for live_p, replayed_p in zip(live_predictions, replayed_predictions):
            assert np.array_equal(np.asarray(live_p), np.asarray(replayed_p))

    def test_replay_does_not_reappend_to_the_attached_log(self, tmp_path, dataset):
        servable = make_servable(dataset)
        log = UpdateLog(tmp_path / "u.log")
        live = InferenceServer(workers=("cpu",), update_log=log)
        live.register(servable)
        with live:
            for samples, labels in rounds(dataset):
                live.update("isolet", samples, labels)
        assert len(log) == 3

        restarted = InferenceServer(workers=("cpu",), update_log=log)
        restarted.register(make_servable(dataset))
        with restarted:
            log.replay(restarted)
        assert len(log) == 3  # replayed rounds are already in the log

    def test_replay_into_non_baseline_target_is_detected(self, tmp_path, dataset):
        servable = make_servable(dataset)
        log = UpdateLog(tmp_path / "u.log")
        live = InferenceServer(workers=("cpu",), update_log=log)
        live.register(servable)
        with live:
            for samples, labels in rounds(dataset):
                live.update("isolet", samples, labels)

        # The target already took an update, so its versions are ahead
        # of the log's recorded ones.
        drifted = InferenceServer(workers=("cpu",))
        drifted.register(make_servable(dataset))
        with drifted:
            drifted.update("isolet", *rounds(dataset)[0])
            with pytest.raises(UpdateLogError, match="baseline"):
                log.replay(drifted)

    def test_model_filter_replays_a_subset(self, tmp_path, dataset):
        servable = make_servable(dataset)
        log = UpdateLog(tmp_path / "u.log")
        samples, labels = rounds(dataset)[0]
        # Interleave records for a model this target does not serve; the
        # filtered replay must skip them.
        log.append("other", samples, labels)
        log.append("isolet", samples, labels, version=2)
        server = InferenceServer(workers=("cpu",))
        server.register(servable)
        with server:
            versions = log.replay(server, model="isolet")
        assert versions == [2]
