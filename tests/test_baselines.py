"""Tests for the hand-written baseline implementations."""

import numpy as np
import pytest

from repro.baselines import (
    classification_cuda,
    classification_python,
    clustering_cuda,
    clustering_python,
    hashtable_python,
    hyperoms_cuda,
    relhd_cuda,
    relhd_python,
)


class TestClassificationBaselines:
    def test_python_baseline_learns(self, tiny_isolet):
        result = classification_python.run(tiny_isolet, dimension=256, epochs=1)
        assert result.style == "python"
        assert result.quality > 0.2
        assert result.wall_seconds > 0

    def test_cuda_baseline_learns(self, tiny_isolet):
        result = classification_cuda.run(tiny_isolet, dimension=512, epochs=2)
        assert result.style == "cuda"
        assert result.quality > 0.3

    def test_both_styles_agree_in_quality(self, tiny_isolet):
        python = classification_python.run(tiny_isolet, dimension=512, epochs=2)
        cuda = classification_cuda.run(tiny_isolet, dimension=512, epochs=2)
        assert abs(python.quality - cuda.quality) < 0.2


class TestClusteringBaselines:
    def test_python_baseline(self, tiny_isolet):
        result = clustering_python.run(tiny_isolet, dimension=256, n_clusters=26, iterations=2)
        assert 0 < result.quality <= 1.0

    def test_cuda_baseline(self, tiny_isolet):
        result = clustering_cuda.run(tiny_isolet, dimension=512, n_clusters=26, iterations=3)
        assert 0 < result.quality <= 1.0
        assert result.outputs["assignments"].shape == (200,)


class TestHyperOMSBaseline:
    def test_gpu_baseline_recall(self, tiny_spectra):
        result = hyperoms_cuda.run(tiny_spectra, dimension=1024)
        assert result.quality > 0.5
        assert result.quality_metric == "recall@1"


class TestRelHDBaselines:
    def test_python_baseline(self, tiny_cora):
        result = relhd_python.run(tiny_cora, dimension=512, epochs=1)
        assert result.quality > 0.4

    def test_cuda_baseline(self, tiny_cora):
        result = relhd_cuda.run(tiny_cora, dimension=1024, epochs=2)
        assert result.quality > 0.5


class TestHashtableBaseline:
    def test_loop_and_batched_search_agree(self, tiny_genomics):
        loop = hashtable_python.run(tiny_genomics, dimension=1024)
        batched = hashtable_python.run(tiny_genomics, dimension=1024, use_batched_search=True)
        assert np.array_equal(loop.outputs["matches"], batched.outputs["matches"])
        assert loop.quality == batched.quality
        assert loop.quality > 0.6


class TestBaselineVsHdcppQuality:
    """The portable HDC++ implementation must not lose application quality."""

    def test_classification_quality_parity(self, tiny_isolet):
        from repro.apps import HDClassification

        hdcpp = HDClassification(dimension=512, epochs=2).run(tiny_isolet, target="gpu")
        baseline = classification_cuda.run(tiny_isolet, dimension=512, epochs=2)
        assert hdcpp.quality >= baseline.quality - 0.12

    def test_hyperoms_quality_parity(self, tiny_spectra):
        from repro.apps import HyperOMS

        hdcpp = HyperOMS(dimension=1024).run(tiny_spectra, target="gpu")
        baseline = hyperoms_cuda.run(tiny_spectra, dimension=1024)
        assert hdcpp.quality >= baseline.quality - 0.1
