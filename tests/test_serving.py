"""Tests for the inference-serving runtime (repro.serving)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps import HDClassificationInference
from repro.apps.common import bipolar_random
from repro.backends import CPUBackend, compile as hdc_compile, compile_cached
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import (
    CompiledProgramCache,
    DeadlineExceeded,
    FairScheduler,
    InferenceServer,
    MicroBatcher,
    ModelRegistry,
    Servable,
    ShardedDeployment,
    bucket_for,
    pad_batch,
    program_signature,
    reduce_partials,
)
from repro.serving.batching import InferenceRequest
from repro.serving.scheduler import BatchWork, WorkerPool, make_policy
from repro.transforms import ApproximationConfig

DIM = 256
FEATURES = 64
CLASSES = 8


@pytest.fixture(scope="module")
def dataset():
    return make_isolet_like(
        IsoletConfig(n_features=FEATURES, n_classes=CLASSES, n_train=200, n_test=60, seed=7)
    )


@pytest.fixture(scope="module")
def app():
    return HDClassificationInference(dimension=DIM, similarity="hamming")


@pytest.fixture(scope="module")
def servable(app, dataset):
    return app.as_servable(dataset=dataset)


@pytest.fixture(scope="module")
def per_request_labels(servable, dataset):
    """Ground truth: every test sample through the one-shot CPU flow."""
    compiled = hdc_compile(servable.build_program(1), target="cpu")
    handle = compiled.bind(**servable.constants)
    return np.array(
        [
            int(np.asarray(handle.run(queries=dataset.test_features[i : i + 1]).output)[0])
            for i in range(dataset.test_features.shape[0])
        ],
        dtype=np.int64,
    )


def bipolar_servable(seed: int = 5, name: str = "bipolar-classifier") -> Servable:
    """A servable over pre-encoded bipolar queries: exact in every path.

    With ±1 inputs both the per-row reference kernels and the batched GEMM
    kernels compute integer-valued distances exactly, so batched serving
    must be *bit-identical* to per-request execution.
    """
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            distances = H.hamming_distance(H.sign(encoding), H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


class TestBatchedEquivalence:
    def test_batched_serving_bit_identical_on_bipolar_queries(self):
        servable = bipolar_servable()
        rng = np.random.default_rng(9)
        queries = (rng.integers(0, 2, (40, DIM)) * 2 - 1).astype(np.float32)

        compiled = hdc_compile(servable.build_program(1), target="cpu")
        handle = compiled.bind(**servable.constants)
        expected = [int(np.asarray(handle.run(encodings=queries[i : i + 1]).output)[0]) for i in range(40)]

        server = InferenceServer(workers=("cpu",), max_batch_size=16, max_wait_seconds=0.005)
        server.register(servable)
        with server:
            results = server.infer_many(servable.name, list(queries))
        assert [int(np.asarray(r)) for r in results] == expected

    def test_classification_app_matches_per_request(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu",), max_batch_size=16, max_wait_seconds=0.005)
        server.register(servable)
        with server:
            results = server.infer_many(servable.name, list(dataset.test_features))
        served = np.array([int(np.asarray(r)) for r in results], dtype=np.int64)
        assert np.array_equal(served, per_request_labels)

    def test_deployment_run_matches_per_request(self, servable, dataset, per_request_labels):
        registry = ModelRegistry()
        deployment = registry.register(servable)
        out = np.asarray(deployment.run(dataset.test_features).output, dtype=np.int64)
        assert np.array_equal(out, per_request_labels)


class TestCompiledProgramCache:
    def test_register_and_warm_accounting(self, servable):
        registry = ModelRegistry()
        registry.register(servable, warm_batch_sizes=(1, 8))
        assert registry.cache.stats.misses == 2
        assert registry.cache.stats.hits == 0

        deployment = registry.get(servable.name)
        deployment.warm([1, 8])
        assert registry.cache.stats.misses == 2  # warm again: pure hits
        # Deployment memoizes bound handles, so the second warm may not even
        # reach the cache; re-registration must, and must hit.
        registry.register(servable, warm_batch_sizes=(1, 8))
        assert registry.cache.stats.hits >= 2
        assert registry.cache.stats.misses == 2

    def test_distinct_configs_are_distinct_entries(self, servable):
        registry = ModelRegistry()
        registry.register(servable, warm_batch_sizes=(1,))
        registry.register(
            servable,
            name="approx",
            config=ApproximationConfig(binarize=True),
            warm_batch_sizes=(1,),
        )
        assert registry.cache.stats.misses == 2

    def test_retrained_state_changes_signature(self, app, dataset):
        first = app.as_servable(dataset=dataset)
        rp, classes = app.train_offline(dataset)
        retrained = app.as_servable(trained=(rp, classes + 1.0))
        assert first.signature != retrained.signature

    def test_compile_cached_entry_point(self):
        prog = H.Program("cache_entry")

        @prog.entry(H.hv(DIM), H.hm(CLASSES, DIM))
        def main(query, classes):
            return H.arg_min(H.hamming_distance(H.sign(query), H.sign(classes)))

        cache = CompiledProgramCache()
        first = compile_cached(prog, target="cpu", cache=cache)
        second = compile_cached(prog, target="cpu", cache=cache)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = CompiledProgramCache(capacity=1)
        backend = CPUBackend()

        def build(batch):
            prog = H.Program(f"evict_b{batch}")

            @prog.entry(H.hm(batch, DIM))
            def main(queries):
                return H.sign(queries)

            return prog

        for batch in (1, 2, 1):
            key = cache.make_key(f"sig", "cpu", None, batch_size=batch)
            cache.get_or_compile(key, backend, lambda b=batch: build(b))
        assert cache.stats.evictions == 2
        assert cache.stats.misses == 3  # batch 1 was evicted by batch 2

    def test_program_signature_distinguishes_shapes(self):
        def build(batch):
            prog = H.Program("sig_probe")

            @prog.entry(H.hm(batch, DIM))
            def main(queries):
                return H.sign(queries)

            return prog

        assert program_signature(build(1)) != program_signature(build(2))
        assert program_signature(build(4)) == program_signature(build(4))


class TestMicroBatcher:
    def test_size_watermark_releases_immediately(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=10.0)
        for i in range(4):
            batcher.submit(np.array([i]))
        start = time.monotonic()
        batch = batcher.next_batch(timeout=1.0)
        assert len(batch) == 4
        assert time.monotonic() - start < 1.0  # did not wait for the time watermark

    def test_time_watermark_flushes_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=64, max_wait_seconds=0.05)
        for i in range(3):
            batcher.submit(np.array([i]))
        start = time.monotonic()
        batch = batcher.next_batch(timeout=5.0)
        waited = time.monotonic() - start
        assert len(batch) == 3
        assert waited >= 0.03  # held back until the oldest request aged out

    def test_oversized_burst_splits_into_batches(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.01)
        for i in range(10):
            batcher.submit(np.array([i]))
        sizes = [len(batcher.next_batch(timeout=1.0)) for _ in range(3)]
        assert sizes == [4, 4, 2]

    def test_close_drains_then_signals_exhaustion(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=10.0)
        batcher.submit(np.array([1]))
        batcher.close()
        assert len(batcher.next_batch(timeout=1.0)) == 1
        assert batcher.next_batch(timeout=0.01) is None
        with pytest.raises(RuntimeError):
            batcher.submit(np.array([2]))

    def test_bucket_and_padding_helpers(self):
        assert [bucket_for(n, 64) for n in (1, 2, 3, 5, 33, 64)] == [1, 2, 4, 8, 64, 64]
        assert bucket_for(100, 64) == 64
        batch = np.arange(6, dtype=np.float32).reshape(3, 2)
        padded = pad_batch(batch, 8)
        assert padded.shape == (8, 2)
        assert np.array_equal(padded[:3], batch)
        assert np.array_equal(padded[3:], np.repeat(batch[-1:], 5, axis=0))
        with pytest.raises(ValueError):
            pad_batch(batch, 2)


class TestPrioritiesAndDeadlines:
    def test_priority_lanes_flush_high_first(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=10.0)
        batcher.submit(np.array([0]), priority=0)
        batcher.submit(np.array([1]), priority=0)
        batcher.submit(np.array([2]), priority=5)
        batcher.submit(np.array([3]), priority=-1)
        batch = batcher.next_batch(timeout=1.0)
        assert [int(r.sample[0]) for r in batch] == [2, 0, 1, 3]

    def test_earliest_deadline_first_within_lane(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=10.0)
        batcher.submit(np.array([0]))  # no deadline: flushes last, FIFO
        batcher.submit(np.array([1]), deadline_ms=5000)
        batcher.submit(np.array([2]), deadline_ms=1000)
        batcher.submit(np.array([3]), deadline_ms=3000)
        batch = batcher.next_batch(timeout=1.0)
        assert [int(r.sample[0]) for r in batch] == [2, 3, 1, 0]

    def test_expired_requests_shed_with_typed_error(self):
        shed_counts = []
        batcher = MicroBatcher(
            max_batch_size=64, max_wait_seconds=0.01, on_expire=shed_counts.append
        )
        doomed = [batcher.submit(np.array([i]), deadline_ms=1.0) for i in range(3)]
        survivor = batcher.submit(np.array([9]))
        time.sleep(0.02)
        batch = batcher.next_batch(timeout=1.0)
        assert [int(r.sample[0]) for r in batch] == [9]
        assert batcher.expired == 3 and shed_counts == [3]
        for future in doomed:
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=0)
        assert not survivor.done()

    def test_tight_deadline_flushes_before_time_watermark(self):
        batcher = MicroBatcher(max_batch_size=64, max_wait_seconds=0.5)
        batcher.submit(np.array([0]), deadline_ms=20.0)
        start = time.monotonic()
        batch = batcher.next_batch(timeout=2.0)
        waited = time.monotonic() - start
        assert len(batch) == 1
        assert waited < 0.2  # did not sit out the 500ms time watermark

    def test_request_deadline_accessors(self):
        request = InferenceRequest(np.zeros(1), deadline_ms=50.0)
        assert request.deadline_at == pytest.approx(request.enqueued_at + 0.05)
        assert not request.expired(request.enqueued_at + 0.01)
        assert request.expired(request.enqueued_at + 0.06)
        assert InferenceRequest(np.zeros(1)).deadline_at is None

    def test_server_accounts_deadline_sheds(self, servable, dataset):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        # Enqueue against the stopped server so the deadlines lapse in queue.
        doomed = [
            server.submit(servable.name, dataset.test_features[i], deadline_ms=1.0)
            for i in range(5)
        ]
        time.sleep(0.03)
        with server:
            label = int(np.asarray(server.infer(servable.name, dataset.test_features[0])))
            server.drain()
            stats = server.stats()
        for future in doomed:
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=0)
        assert stats.deadline_exceeded == 5
        assert stats.requests == 1  # sheds are not served requests
        assert 0 <= label < CLASSES


class TestFairScheduler:
    @staticmethod
    def _work(enqueued_at=None):
        request = InferenceRequest(np.zeros(1))
        if enqueued_at is not None:
            request.enqueued_at = enqueued_at
        return BatchWork(None, [request])

    def test_equal_weights_alternate(self):
        scheduler = FairScheduler()
        now = time.monotonic()
        for name in ("a", "b"):
            scheduler.ensure_lane(name)
        works = {name: [self._work(now) for _ in range(3)] for name in ("a", "b")}
        for name, items in works.items():
            for item in items:
                scheduler.offer(name, item)
        served = [scheduler.next_ready(timeout=0.1) for _ in range(6)]
        lanes = ["a" if w in works["a"] else "b" for w in served]
        assert lanes[:2] in (["a", "b"], ["b", "a"])
        assert lanes.count("a") == lanes.count("b") == 3
        # Never two consecutive turns for the same lane while both have work.
        assert all(lanes[i] != lanes[i + 1] for i in range(4))

    def test_weighted_shares(self):
        scheduler = FairScheduler()
        now = time.monotonic()
        scheduler.ensure_lane("heavy", weight=3.0)
        scheduler.ensure_lane("light", weight=1.0)
        heavy = [self._work(now) for _ in range(9)]
        light = [self._work(now) for _ in range(9)]
        for item in heavy:
            scheduler.offer("heavy", item)
        for item in light:
            scheduler.offer("light", item)
        first_eight = [scheduler.next_ready(timeout=0.1) for _ in range(8)]
        n_heavy = sum(1 for w in first_eight if w in heavy)
        assert n_heavy == 6  # 3:1 share over any window

    def test_starvation_aging_boosts_old_head(self):
        scheduler = FairScheduler(aging_seconds=0.05)
        now = time.monotonic()
        scheduler.ensure_lane("hot", weight=10.0)
        scheduler.ensure_lane("cold", weight=0.1)
        stale = self._work(now - 10.0)  # head has waited far past aging_seconds
        fresh = [self._work(now) for _ in range(5)]
        for item in fresh:
            scheduler.offer("hot", item)
        scheduler.offer("cold", stale)
        assert scheduler.next_ready(timeout=0.1) is stale

    def test_idle_lane_reenters_at_current_vtime(self):
        scheduler = FairScheduler(aging_seconds=1000.0)  # effectively no aging
        now = time.monotonic()
        scheduler.ensure_lane("busy")
        scheduler.ensure_lane("idle")
        busy = [self._work(now) for _ in range(4)]
        for item in busy:
            scheduler.offer("busy", item)
        for _ in range(4):
            scheduler.next_ready(timeout=0.1)
        # The idle lane must not replay the 4 turns it sat out.
        late = [self._work(now) for _ in range(2)]
        for item in late:
            scheduler.offer("idle", item)
        scheduler.offer("busy", self._work(now))
        served = [scheduler.next_ready(timeout=0.1) for _ in range(3)]
        assert sum(1 for w in served if w in late) == 2

    def test_admissible_predicate_skips_blocked_lane(self):
        scheduler = FairScheduler()
        now = time.monotonic()
        blocked = [self._work(now) for _ in range(3)]
        free = [self._work(now) for _ in range(2)]
        for item in blocked:
            scheduler.offer("blocked", item)
        for item in free:
            scheduler.offer("free", item)
        served = [
            scheduler.next_ready(timeout=0.1, admissible=lambda w: w not in blocked)
            for _ in range(2)
        ]
        # The blocked lane never head-of-line blocks the admissible one.
        assert all(w in free for w in served)
        assert scheduler.next_ready(timeout=0.05, admissible=lambda w: w not in blocked) is None
        assert scheduler.pending() == 3  # blocked work still queued

    def test_close_drains_then_signals(self):
        scheduler = FairScheduler()
        scheduler.offer("lane", self._work())
        scheduler.close()
        assert scheduler.next_ready(timeout=0.1) is not None
        assert scheduler.next_ready(timeout=0.1) is None
        assert scheduler.pending() == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FairScheduler(aging_seconds=0.0)
        scheduler = FairScheduler()
        with pytest.raises(ValueError):
            scheduler.ensure_lane("lane", weight=0.0)


class TestMultiModelFairness:
    def test_cold_model_p95_wait_bounded_under_skew(self):
        """Acceptance: skewed two-model load keeps the cold model's p95
        wait within 3x of the hot model's (FIFO would be unbounded)."""
        hot = bipolar_servable(seed=3, name="hot-model")
        cold = bipolar_servable(seed=4, name="cold-model")
        server = InferenceServer(
            workers=("cpu",),
            max_batch_size=8,
            max_wait_seconds=0.001,
            worker_backlog_samples=16,
        )
        server.register(hot)
        server.register(cold)
        rng = np.random.default_rng(2)
        hot_queries = (rng.integers(0, 2, (600, DIM)) * 2 - 1).astype(np.float32)
        cold_queries = (rng.integers(0, 2, (12, DIM)) * 2 - 1).astype(np.float32)
        latencies = {"hot": [], "cold": []}
        lock = threading.Lock()

        def tracked_submit(model, key, sample):
            start = time.monotonic()

            def record(_future):
                with lock:
                    latencies[key].append(time.monotonic() - start)

            server.submit(model, sample).add_done_callback(record)

        with server:
            for sample in hot_queries:  # burst: saturates the worker
                tracked_submit(hot.name, "hot", sample)
            for sample in cold_queries:  # steady trickle during the backlog
                tracked_submit(cold.name, "cold", sample)
                time.sleep(0.002)
            server.drain()
            stats = server.stats()

        from repro.serving import percentile

        hot_p95 = percentile(latencies["hot"], 95)
        cold_p95 = percentile(latencies["cold"], 95)
        assert len(latencies["hot"]) == 600 and len(latencies["cold"]) == 12
        assert cold_p95 <= 3.0 * hot_p95, (
            f"cold p95 {cold_p95 * 1e3:.1f}ms vs hot p95 {hot_p95 * 1e3:.1f}ms"
        )
        assert stats.scheduler_stats["hot-model"]["served_batches"] >= 1
        assert stats.scheduler_stats["cold-model"]["served_batches"] >= 1

    def test_drain_idiom_yields_consistent_stats(self, servable, dataset):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        with server:
            futures = [
                server.submit(servable.name, dataset.test_features[i]) for i in range(20)
            ]
            server.drain()
            stats = server.stats()
            assert stats.requests == 20  # every submitted request accounted for
            assert all(future.done() for future in futures)

    def test_reregister_while_stopped_preserves_queued_requests(
        self, servable, dataset, per_request_labels
    ):
        """Regression: replacing a stopped server's batcher must adopt its
        queued requests instead of orphaning their futures."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        future = server.submit(servable.name, dataset.test_features[0])
        server.register(servable)  # re-register before ever starting
        with server:
            server.drain()
        assert int(np.asarray(future.result(timeout=1.0))) == per_request_labels[0]

    def test_submit_after_stop_rejected_until_restart(
        self, servable, dataset, per_request_labels
    ):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        with server:
            server.infer(servable.name, dataset.test_features[0])
        with pytest.raises(RuntimeError):  # stopped queues reject, never orphan
            server.submit(servable.name, dataset.test_features[1])
        with server:  # restart reopens the queue
            label = int(np.asarray(server.infer(servable.name, dataset.test_features[1])))
        assert label == per_request_labels[1]

    def test_drain_times_out_when_not_running(self, servable, dataset):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        server.submit(servable.name, dataset.test_features[0])
        with pytest.raises(TimeoutError):
            server.drain(timeout=0.05)
        with server:
            server.drain()  # resolves once the server runs


class TestShardedDeployments:
    def test_reduce_partials_matches_numpy(self):
        rng = np.random.default_rng(0)
        scores = rng.integers(0, 100, (10, 12)).astype(np.float32)
        partials = [scores[:, :5], scores[:, 5:8], scores[:, 8:]]
        assert np.array_equal(reduce_partials(partials, "argmin"), scores.argmin(axis=1))
        assert np.array_equal(reduce_partials(partials, "argmax"), scores.argmax(axis=1))
        top3 = reduce_partials(partials, "argmin", top_k=3)
        assert np.array_equal(top3, np.argsort(scores, axis=1, kind="stable")[:, :3])
        with pytest.raises(ValueError):
            reduce_partials(partials, "median")
        with pytest.raises(ValueError):
            reduce_partials(partials, "argmin", top_k=13)

    def test_sharded_registry_bit_identical(self, servable, dataset, per_request_labels):
        registry = ModelRegistry()
        for n_shards in (2, 4):
            deployment = registry.register(servable, name=f"sharded-{n_shards}", shards=n_shards)
            assert isinstance(deployment, ShardedDeployment)
            out = np.asarray(deployment.run(dataset.test_features).output, dtype=np.int64)
            assert np.array_equal(out, per_request_labels)

    def test_sharded_server_bit_identical(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=16, max_wait_seconds=0.005)
        server.register(servable, name="sharded", shards=2)
        with server:
            results = server.infer_many("sharded", list(dataset.test_features))
        served = np.array([int(np.asarray(r)) for r in results], dtype=np.int64)
        assert np.array_equal(served, per_request_labels)

    def test_sharded_top_k_contains_argmin(self, servable, dataset, per_request_labels):
        registry = ModelRegistry()
        deployment = registry.register(servable, name="sharded-topk", shards=2)
        top2 = np.asarray(deployment.run(dataset.test_features, top_k=2).output)
        assert top2.shape == (dataset.test_features.shape[0], 2)
        assert np.array_equal(top2[:, 0], per_request_labels)

    def test_shard_report_merges_partial_costs(self, servable, dataset):
        registry = ModelRegistry()
        deployment = registry.register(servable, name="sharded-report", shards=2)
        result = deployment.run(dataset.test_features[:8])
        assert result.report.kernel_launches > 0

    def test_every_app_shard_spec_bit_identical(self):
        """The shard hooks of the other four app adapters stay exact."""
        rng = np.random.default_rng(17)

        def clustering_servable():
            from repro.apps.clustering import HDClustering

            app = HDClustering(dimension=128)
            rp = np.sign(rng.standard_normal((128, 16))).astype(np.float32)
            clusters = np.sign(rng.standard_normal((5, 128))).astype(np.float32)
            return app.as_servable(rp, clusters), rng.standard_normal((8, 16)).astype(np.float32)

        def relhd_servable():
            from repro.apps.relhd import RelHD

            app = RelHD(dimension=128)
            classes = np.sign(rng.standard_normal((7, 128))).astype(np.float32)
            return app.as_servable(classes), np.sign(
                rng.standard_normal((8, 128))
            ).astype(np.float32)

        def hyperoms_servable():
            from repro.apps.hyperoms import HyperOMS

            app = HyperOMS(dimension=128)
            library = rng.random((12, 24)).astype(np.float32)
            encodings = app.encode_library(library)
            return app.as_servable(encodings, n_bins=24), rng.random((6, 24)).astype(np.float32)

        def hashtable_servable():
            from repro.apps.hashtable import HDHashtable
            from repro.datasets.genomics import (
                GenomicsConfig,
                base_indices,
                make_genomics_dataset,
            )

            config = GenomicsConfig(
                genome_length=4000, bucket_size=500, read_length=60, n_reads=8, n_decoys=0,
                kmer_length=8,
            )
            genomics = make_genomics_dataset(config)
            app = HDHashtable(dimension=128)
            base_hvs = app.make_base_hypervectors()
            table = app.encode_reference_buckets(genomics, base_hvs)
            queries = np.stack([base_indices(read) for read in genomics.reads[:6]])
            return (
                app.as_servable(
                    table,
                    read_length=config.read_length,
                    kmer_length=config.kmer_length,
                    base_hvs=base_hvs,
                ),
                queries,
            )

        for factory in (clustering_servable, relhd_servable, hyperoms_servable, hashtable_servable):
            shardable, queries = factory()
            registry = ModelRegistry()
            base = np.asarray(registry.register(shardable).run(queries).output)
            split = np.asarray(
                registry.register(shardable, name="sharded", shards=2).run(queries).output
            )
            assert np.array_equal(base, split), shardable.name

    def test_sharding_requires_spec_and_sane_counts(self, servable):
        registry = ModelRegistry()
        unshardable = Servable(
            name="no-spec",
            build_program=servable.build_program,
            constants=servable.constants,
            sample_shape=servable.sample_shape,
        )
        with pytest.raises(ValueError):
            registry.register(unshardable, shards=2)
        with pytest.raises(ValueError):
            registry.register(servable, name="one", shards=1)
        with pytest.raises(ValueError):
            registry.register(servable, name="many", shards=CLASSES + 1)


class TestSchedulingAndWorkers:
    def test_policies_resolve_by_name(self):
        for name in ("round_robin", "least_loaded", "latency_aware"):
            assert make_policy(name).name == name
        with pytest.raises(ValueError):
            make_policy("random")

    def test_round_robin_rotates(self):
        pool = WorkerPool(["cpu", "cpu"], policy="round_robin")
        chosen = [pool.policy.choose(pool.workers, 1).name for _ in range(4)]
        assert chosen == ["cpu-0", "cpu-1", "cpu-0", "cpu-1"]

    def test_threaded_many_clients_smoke(self, servable, dataset, per_request_labels):
        server = InferenceServer(
            workers=("cpu", "cpu"), policy="least_loaded", max_batch_size=16, max_wait_seconds=0.002
        )
        server.register(servable)
        n_clients, per_client = 8, 10
        rng = np.random.default_rng(11)
        picks = rng.integers(0, dataset.test_features.shape[0], size=(n_clients, per_client))
        results = [[None] * per_client for _ in range(n_clients)]

        def client(c: int) -> None:
            for j, index in enumerate(picks[c]):
                results[c][j] = int(
                    np.asarray(server.infer(servable.name, dataset.test_features[index]))
                )

        with server:
            threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        for c in range(n_clients):
            for j, index in enumerate(picks[c]):
                assert results[c][j] == per_request_labels[index]

        stats = server.stats()
        assert stats.requests == n_clients * per_client
        assert stats.failures == 0
        assert stats.batches >= 1
        assert stats.mean_batch_size >= 1.0
        assert sum(size * count for size, count in stats.batch_size_histogram.items()) == (
            n_clients * per_client
        )
        assert stats.latency_p99_ms >= stats.latency_p50_ms > 0.0

    def test_accelerator_worker_reuses_device_session(self, servable, dataset):
        server = InferenceServer(workers=("hdc_asic",), max_batch_size=8, max_wait_seconds=0.002)
        server.register(servable)
        with server:
            results = server.infer_many(servable.name, list(dataset.test_features[:20]))
        assert all(0 <= int(np.asarray(r)) < CLASSES for r in results)
        stats = server.stats()
        # The warm DeviceSession keeps base/class memories resident, so
        # every batch after the first elides its re-programming transfers.
        assert stats.batches >= 2
        assert stats.elided_transfers >= 1

    def test_unsupported_model_rejected_at_registration(self, servable, dataset):
        cpu_only = bipolar_servable(name="cpu-only")
        server = InferenceServer(workers=("hdc_reram",))
        with pytest.raises(ValueError):
            server.register(cpu_only)

    def test_sample_shape_validated_on_submit(self, servable):
        server = InferenceServer(workers=("cpu",))
        server.register(servable)
        with pytest.raises(ValueError):
            server.submit(servable.name, np.zeros(FEATURES + 1))

    def test_unknown_model_rejected(self):
        server = InferenceServer(workers=("cpu",))
        with pytest.raises(KeyError):
            server.submit("nope", np.zeros(3))


class TestLifecycleAndParity:
    """Regression tests for review findings on the first serving cut."""

    def test_percentile_nearest_rank(self):
        from repro.serving import percentile

        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile(list(range(1, 21)), 95) == 19
        assert percentile(list(range(1, 21)), 99) == 20

    def test_cosine_servable_matches_one_shot_run(self, dataset):
        app = HDClassificationInference(dimension=128)  # default cosine
        trained = app.train_offline(dataset)
        expected = app.run(dataset, target="cpu", trained=trained).outputs["predictions"]
        server = InferenceServer(workers=("cpu",), max_batch_size=16)
        server.register(app.as_servable(trained=trained))
        with server:
            results = server.infer_many("hd-classification-inference", list(dataset.test_features))
        served = np.array([int(np.asarray(r)) for r in results], dtype=np.int64)
        assert np.array_equal(served, expected)

    def test_hot_reregister_while_running_and_stop(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        server.start()
        try:
            first = int(np.asarray(server.infer(servable.name, dataset.test_features[0])))
            server.register(servable)  # hot swap: must not orphan the dispatcher
            second = int(np.asarray(server.infer(servable.name, dataset.test_features[0])))
        finally:
            server.stop()  # regression: used to hang forever after re-register
        assert first == second == per_request_labels[0]

    def test_server_restarts_after_stop(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        with server:
            server.infer(servable.name, dataset.test_features[0])
        with server:  # regression: batchers used to stay closed
            label = int(np.asarray(server.infer(servable.name, dataset.test_features[1])))
        assert label == per_request_labels[1]
