"""Tests for the inference-serving runtime (repro.serving)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps import HDClassificationInference
from repro.apps.common import bipolar_random
from repro.backends import CPUBackend, compile as hdc_compile, compile_cached
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import (
    CompiledProgramCache,
    InferenceServer,
    MicroBatcher,
    ModelRegistry,
    Servable,
    bucket_for,
    pad_batch,
    program_signature,
)
from repro.serving.scheduler import WorkerPool, make_policy
from repro.transforms import ApproximationConfig

DIM = 256
FEATURES = 64
CLASSES = 8


@pytest.fixture(scope="module")
def dataset():
    return make_isolet_like(
        IsoletConfig(n_features=FEATURES, n_classes=CLASSES, n_train=200, n_test=60, seed=7)
    )


@pytest.fixture(scope="module")
def app():
    return HDClassificationInference(dimension=DIM, similarity="hamming")


@pytest.fixture(scope="module")
def servable(app, dataset):
    return app.as_servable(dataset=dataset)


@pytest.fixture(scope="module")
def per_request_labels(servable, dataset):
    """Ground truth: every test sample through the one-shot CPU flow."""
    compiled = hdc_compile(servable.build_program(1), target="cpu")
    handle = compiled.bind(**servable.constants)
    return np.array(
        [
            int(np.asarray(handle.run(queries=dataset.test_features[i : i + 1]).output)[0])
            for i in range(dataset.test_features.shape[0])
        ],
        dtype=np.int64,
    )


def bipolar_servable(seed: int = 5, name: str = "bipolar-classifier") -> Servable:
    """A servable over pre-encoded bipolar queries: exact in every path.

    With ±1 inputs both the per-row reference kernels and the batched GEMM
    kernels compute integer-valued distances exactly, so batched serving
    must be *bit-identical* to per-request execution.
    """
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            distances = H.hamming_distance(H.sign(encoding), H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


class TestBatchedEquivalence:
    def test_batched_serving_bit_identical_on_bipolar_queries(self):
        servable = bipolar_servable()
        rng = np.random.default_rng(9)
        queries = (rng.integers(0, 2, (40, DIM)) * 2 - 1).astype(np.float32)

        compiled = hdc_compile(servable.build_program(1), target="cpu")
        handle = compiled.bind(**servable.constants)
        expected = [int(np.asarray(handle.run(encodings=queries[i : i + 1]).output)[0]) for i in range(40)]

        server = InferenceServer(workers=("cpu",), max_batch_size=16, max_wait_seconds=0.005)
        server.register(servable)
        with server:
            results = server.infer_many(servable.name, list(queries))
        assert [int(np.asarray(r)) for r in results] == expected

    def test_classification_app_matches_per_request(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu",), max_batch_size=16, max_wait_seconds=0.005)
        server.register(servable)
        with server:
            results = server.infer_many(servable.name, list(dataset.test_features))
        served = np.array([int(np.asarray(r)) for r in results], dtype=np.int64)
        assert np.array_equal(served, per_request_labels)

    def test_deployment_run_matches_per_request(self, servable, dataset, per_request_labels):
        registry = ModelRegistry()
        deployment = registry.register(servable)
        out = np.asarray(deployment.run(dataset.test_features).output, dtype=np.int64)
        assert np.array_equal(out, per_request_labels)


class TestCompiledProgramCache:
    def test_register_and_warm_accounting(self, servable):
        registry = ModelRegistry()
        registry.register(servable, warm_batch_sizes=(1, 8))
        assert registry.cache.stats.misses == 2
        assert registry.cache.stats.hits == 0

        deployment = registry.get(servable.name)
        deployment.warm([1, 8])
        assert registry.cache.stats.misses == 2  # warm again: pure hits
        # Deployment memoizes bound handles, so the second warm may not even
        # reach the cache; re-registration must, and must hit.
        registry.register(servable, warm_batch_sizes=(1, 8))
        assert registry.cache.stats.hits >= 2
        assert registry.cache.stats.misses == 2

    def test_distinct_configs_are_distinct_entries(self, servable):
        registry = ModelRegistry()
        registry.register(servable, warm_batch_sizes=(1,))
        registry.register(
            servable,
            name="approx",
            config=ApproximationConfig(binarize=True),
            warm_batch_sizes=(1,),
        )
        assert registry.cache.stats.misses == 2

    def test_retrained_state_changes_signature(self, app, dataset):
        first = app.as_servable(dataset=dataset)
        rp, classes = app.train_offline(dataset)
        retrained = app.as_servable(trained=(rp, classes + 1.0))
        assert first.signature != retrained.signature

    def test_compile_cached_entry_point(self):
        prog = H.Program("cache_entry")

        @prog.entry(H.hv(DIM), H.hm(CLASSES, DIM))
        def main(query, classes):
            return H.arg_min(H.hamming_distance(H.sign(query), H.sign(classes)))

        cache = CompiledProgramCache()
        first = compile_cached(prog, target="cpu", cache=cache)
        second = compile_cached(prog, target="cpu", cache=cache)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = CompiledProgramCache(capacity=1)
        backend = CPUBackend()

        def build(batch):
            prog = H.Program(f"evict_b{batch}")

            @prog.entry(H.hm(batch, DIM))
            def main(queries):
                return H.sign(queries)

            return prog

        for batch in (1, 2, 1):
            key = cache.make_key(f"sig", "cpu", None, batch_size=batch)
            cache.get_or_compile(key, backend, lambda b=batch: build(b))
        assert cache.stats.evictions == 2
        assert cache.stats.misses == 3  # batch 1 was evicted by batch 2

    def test_program_signature_distinguishes_shapes(self):
        def build(batch):
            prog = H.Program("sig_probe")

            @prog.entry(H.hm(batch, DIM))
            def main(queries):
                return H.sign(queries)

            return prog

        assert program_signature(build(1)) != program_signature(build(2))
        assert program_signature(build(4)) == program_signature(build(4))


class TestMicroBatcher:
    def test_size_watermark_releases_immediately(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=10.0)
        for i in range(4):
            batcher.submit(np.array([i]))
        start = time.monotonic()
        batch = batcher.next_batch(timeout=1.0)
        assert len(batch) == 4
        assert time.monotonic() - start < 1.0  # did not wait for the time watermark

    def test_time_watermark_flushes_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=64, max_wait_seconds=0.05)
        for i in range(3):
            batcher.submit(np.array([i]))
        start = time.monotonic()
        batch = batcher.next_batch(timeout=5.0)
        waited = time.monotonic() - start
        assert len(batch) == 3
        assert waited >= 0.03  # held back until the oldest request aged out

    def test_oversized_burst_splits_into_batches(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.01)
        for i in range(10):
            batcher.submit(np.array([i]))
        sizes = [len(batcher.next_batch(timeout=1.0)) for _ in range(3)]
        assert sizes == [4, 4, 2]

    def test_close_drains_then_signals_exhaustion(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=10.0)
        batcher.submit(np.array([1]))
        batcher.close()
        assert len(batcher.next_batch(timeout=1.0)) == 1
        assert batcher.next_batch(timeout=0.01) is None
        with pytest.raises(RuntimeError):
            batcher.submit(np.array([2]))

    def test_bucket_and_padding_helpers(self):
        assert [bucket_for(n, 64) for n in (1, 2, 3, 5, 33, 64)] == [1, 2, 4, 8, 64, 64]
        assert bucket_for(100, 64) == 64
        batch = np.arange(6, dtype=np.float32).reshape(3, 2)
        padded = pad_batch(batch, 8)
        assert padded.shape == (8, 2)
        assert np.array_equal(padded[:3], batch)
        assert np.array_equal(padded[3:], np.repeat(batch[-1:], 5, axis=0))
        with pytest.raises(ValueError):
            pad_batch(batch, 2)


class TestSchedulingAndWorkers:
    def test_policies_resolve_by_name(self):
        for name in ("round_robin", "least_loaded", "latency_aware"):
            assert make_policy(name).name == name
        with pytest.raises(ValueError):
            make_policy("random")

    def test_round_robin_rotates(self):
        pool = WorkerPool(["cpu", "cpu"], policy="round_robin")
        chosen = [pool.policy.choose(pool.workers, 1).name for _ in range(4)]
        assert chosen == ["cpu-0", "cpu-1", "cpu-0", "cpu-1"]

    def test_threaded_many_clients_smoke(self, servable, dataset, per_request_labels):
        server = InferenceServer(
            workers=("cpu", "cpu"), policy="least_loaded", max_batch_size=16, max_wait_seconds=0.002
        )
        server.register(servable)
        n_clients, per_client = 8, 10
        rng = np.random.default_rng(11)
        picks = rng.integers(0, dataset.test_features.shape[0], size=(n_clients, per_client))
        results = [[None] * per_client for _ in range(n_clients)]

        def client(c: int) -> None:
            for j, index in enumerate(picks[c]):
                results[c][j] = int(
                    np.asarray(server.infer(servable.name, dataset.test_features[index]))
                )

        with server:
            threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        for c in range(n_clients):
            for j, index in enumerate(picks[c]):
                assert results[c][j] == per_request_labels[index]

        stats = server.stats()
        assert stats.requests == n_clients * per_client
        assert stats.failures == 0
        assert stats.batches >= 1
        assert stats.mean_batch_size >= 1.0
        assert sum(size * count for size, count in stats.batch_size_histogram.items()) == (
            n_clients * per_client
        )
        assert stats.latency_p99_ms >= stats.latency_p50_ms > 0.0

    def test_accelerator_worker_reuses_device_session(self, servable, dataset):
        server = InferenceServer(workers=("hdc_asic",), max_batch_size=8, max_wait_seconds=0.002)
        server.register(servable)
        with server:
            results = server.infer_many(servable.name, list(dataset.test_features[:20]))
        assert all(0 <= int(np.asarray(r)) < CLASSES for r in results)
        stats = server.stats()
        # The warm DeviceSession keeps base/class memories resident, so
        # every batch after the first elides its re-programming transfers.
        assert stats.batches >= 2
        assert stats.elided_transfers >= 1

    def test_unsupported_model_rejected_at_registration(self, servable, dataset):
        cpu_only = bipolar_servable(name="cpu-only")
        server = InferenceServer(workers=("hdc_reram",))
        with pytest.raises(ValueError):
            server.register(cpu_only)

    def test_sample_shape_validated_on_submit(self, servable):
        server = InferenceServer(workers=("cpu",))
        server.register(servable)
        with pytest.raises(ValueError):
            server.submit(servable.name, np.zeros(FEATURES + 1))

    def test_unknown_model_rejected(self):
        server = InferenceServer(workers=("cpu",))
        with pytest.raises(KeyError):
            server.submit("nope", np.zeros(3))


class TestLifecycleAndParity:
    """Regression tests for review findings on the first serving cut."""

    def test_percentile_nearest_rank(self):
        from repro.serving import percentile

        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile(list(range(1, 21)), 95) == 19
        assert percentile(list(range(1, 21)), 99) == 20

    def test_cosine_servable_matches_one_shot_run(self, dataset):
        app = HDClassificationInference(dimension=128)  # default cosine
        trained = app.train_offline(dataset)
        expected = app.run(dataset, target="cpu", trained=trained).outputs["predictions"]
        server = InferenceServer(workers=("cpu",), max_batch_size=16)
        server.register(app.as_servable(trained=trained))
        with server:
            results = server.infer_many("hd-classification-inference", list(dataset.test_features))
        served = np.array([int(np.asarray(r)) for r in results], dtype=np.int64)
        assert np.array_equal(served, expected)

    def test_hot_reregister_while_running_and_stop(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        server.start()
        try:
            first = int(np.asarray(server.infer(servable.name, dataset.test_features[0])))
            server.register(servable)  # hot swap: must not orphan the dispatcher
            second = int(np.asarray(server.infer(servable.name, dataset.test_features[0])))
        finally:
            server.stop()  # regression: used to hang forever after re-register
        assert first == second == per_request_labels[0]

    def test_server_restarts_after_stop(self, servable, dataset, per_request_labels):
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        server.register(servable)
        with server:
            server.infer(servable.name, dataset.test_features[0])
        with server:  # regression: batchers used to stay closed
            label = int(np.asarray(server.infer(servable.name, dataset.test_features[1])))
        assert label == per_request_labels[1]
