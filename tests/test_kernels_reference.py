"""Unit tests for the reference kernels, including perforation semantics."""

import numpy as np
import pytest

from repro.kernels import reference as ref


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestReductionSlice:
    def test_full_range(self):
        assert ref.reduction_slice(10) == slice(0, 10, 1)

    def test_segment_and_stride(self):
        assert ref.reduction_slice(10, 2, 8, 3) == slice(2, 8, 3)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ref.reduction_slice(10, 5, 20)
        with pytest.raises(ValueError):
            ref.reduction_slice(10, 8, 4)
        with pytest.raises(ValueError):
            ref.reduction_slice(10, 0, 10, 0)

    def test_scale(self):
        assert ref.perforation_scale(10) == 1.0
        assert ref.perforation_scale(10, 0, 10, 2) == 2.0
        assert ref.perforation_scale(16, 0, 8, 1) == 2.0
        with pytest.raises(ValueError):
            ref.perforation_scale(10, 5, 5, 1)


class TestInitKernels:
    def test_empty(self):
        out = ref.empty((4, 8), np.dtype(np.float32))
        assert out.shape == (4, 8)
        assert np.all(out == 0)

    def test_create_vector_and_matrix(self):
        vec = ref.create((5,), np.dtype(np.float32), lambda i: i * 2.0)
        assert np.allclose(vec, [0, 2, 4, 6, 8])
        mat = ref.create((2, 3), np.dtype(np.int32), lambda i, j: i * 10 + j)
        assert mat[1, 2] == 12

    def test_random_float_range(self, rng):
        out = ref.random_values((1000,), np.dtype(np.float32), rng)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_random_integer_is_bipolar(self, rng):
        out = ref.random_values((1000,), np.dtype(np.int8), rng)
        assert set(np.unique(out)) <= {-1, 1}

    def test_gaussian_statistics(self, rng):
        out = ref.gaussian_values((20000,), np.dtype(np.float32), rng)
        assert abs(out.mean()) < 0.05
        assert abs(out.std() - 1.0) < 0.05


class TestElementwiseKernels:
    def test_wrap_shift_roundtrip(self, rng):
        x = rng.normal(size=32)
        assert np.allclose(ref.wrap_shift(ref.wrap_shift(x, 5), -5), x)

    def test_wrap_shift_matrix_rolls_rows(self):
        mat = np.arange(6).reshape(2, 3)
        out = ref.wrap_shift(mat, 1)
        assert np.array_equal(out[0], [2, 0, 1])

    def test_sign_maps_zero_to_plus_one(self):
        assert np.array_equal(ref.sign(np.array([0.0, -0.5, 2.0])), [1, -1, 1])
        assert ref.sign(np.array([1.0])).dtype == np.int8

    def test_sign_flip(self):
        assert np.array_equal(ref.sign_flip(np.array([1.0, -2.0])), [-1.0, 2.0])

    def test_elementwise_ops(self):
        a, b = np.array([2.0, 4.0]), np.array([1.0, 2.0])
        assert np.allclose(ref.elementwise("add", a, b), [3, 6])
        assert np.allclose(ref.elementwise("sub", a, b), [1, 2])
        assert np.allclose(ref.elementwise("mul", a, b), [2, 8])
        assert np.allclose(ref.elementwise("div", a, b), [2, 2])
        with pytest.raises(KeyError):
            ref.elementwise("pow", a, b)

    def test_division_promotes_integers(self):
        out = ref.elementwise("div", np.array([1, 2], dtype=np.int32), np.array([2, 4], dtype=np.int32))
        assert np.allclose(out, [0.5, 0.5])

    def test_absolute_value_and_cosine(self):
        assert np.allclose(ref.absolute_value(np.array([-3.0, 2.0])), [3, 2])
        assert np.allclose(ref.cosine(np.array([0.0, np.pi])), [1.0, -1.0], atol=1e-6)


class TestAccessKernels:
    def test_get_element(self):
        vec = np.array([1.0, 2.0, 3.0])
        mat = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert ref.get_element(vec, 1) == 2.0
        assert ref.get_element(mat, 1, 2) == 5.0
        with pytest.raises(ValueError):
            ref.get_element(vec, 0, 1)
        with pytest.raises(ValueError):
            ref.get_element(mat, 0)

    def test_arg_min_max(self):
        vec = np.array([3.0, 1.0, 2.0])
        assert ref.arg_min(vec) == 1
        assert ref.arg_max(vec) == 0
        mat = np.array([[3.0, 1.0], [0.0, 5.0]])
        assert np.array_equal(ref.arg_min(mat), [1, 0])
        assert np.array_equal(ref.arg_max(mat), [0, 1])

    def test_set_get_matrix_row_is_functional(self):
        mat = np.zeros((3, 4), dtype=np.float32)
        row = np.ones(4, dtype=np.float32)
        out = ref.set_matrix_row(mat, row, 1)
        assert np.all(mat == 0), "input must not be mutated"
        assert np.array_equal(ref.get_matrix_row(out, 1), row)

    def test_transpose(self):
        mat = np.arange(6).reshape(2, 3)
        assert ref.matrix_transpose(mat).shape == (3, 2)
        assert np.array_equal(ref.matrix_transpose(mat)[2], [2, 5])


class TestReduceKernels:
    def test_l2norm_vector_and_matrix(self):
        assert ref.l2norm(np.array([3.0, 4.0])) == pytest.approx(5.0)
        out = ref.l2norm(np.array([[3.0, 4.0], [0.0, 2.0]]))
        assert np.allclose(out, [5.0, 2.0])

    def test_l2norm_perforation_rescales(self):
        x = np.ones(100, dtype=np.float32)
        exact = ref.l2norm(x)
        strided = ref.l2norm(x, 0, None, 2)
        assert strided == pytest.approx(exact, rel=1e-5)

    def test_cossim_identical_vectors(self, rng):
        x = rng.normal(size=64)
        assert ref.cossim(x, x) == pytest.approx(1.0, abs=1e-6)
        assert ref.cossim(x, -x) == pytest.approx(-1.0, abs=1e-6)

    def test_cossim_shapes(self, rng):
        q = rng.normal(size=(3, 16))
        c = rng.normal(size=(5, 16))
        assert ref.cossim(q[0], c).shape == (5,)
        assert ref.cossim(q, c).shape == (3, 5)
        assert ref.cossim(q, c[0]).shape == (3,)

    def test_cossim_bounds(self, rng):
        q = rng.normal(size=(4, 32))
        c = rng.normal(size=(6, 32))
        sims = ref.cossim(q, c)
        assert np.all(sims <= 1.0 + 1e-6) and np.all(sims >= -1.0 - 1e-6)

    def test_hamming_known_value(self):
        a = np.array([1, 1, -1, -1])
        b = np.array([1, -1, -1, 1])
        assert ref.hamming_distance(a, b) == 2

    def test_hamming_shapes(self, rng):
        a = ref.sign(rng.normal(size=(3, 32)))
        b = ref.sign(rng.normal(size=(5, 32)))
        assert ref.hamming_distance(a[0], b).shape == (5,)
        assert ref.hamming_distance(a, b).shape == (3, 5)

    def test_hamming_perforation_not_rescaled(self):
        a = np.array([1, -1] * 8)
        b = -a
        # All elements differ: full distance 16, strided distance 8 (no rescale).
        assert ref.hamming_distance(a, b) == 16
        assert ref.hamming_distance(a, b, 0, None, 2) == 8

    def test_matmul_matches_numpy(self, rng):
        features = rng.normal(size=17).astype(np.float32)
        rp = rng.normal(size=(29, 17)).astype(np.float32)
        assert np.allclose(ref.matmul(features, rp), rp @ features, atol=1e-4)
        batch = rng.normal(size=(5, 17)).astype(np.float32)
        assert np.allclose(ref.matmul(batch, rp), batch @ rp.T, atol=1e-4)

    def test_matmul_perforation_rescales(self):
        features = np.ones(64, dtype=np.float32)
        rp = np.ones((8, 64), dtype=np.float32)
        exact = ref.matmul(features, rp)
        strided = ref.matmul(features, rp, 0, None, 2)
        assert np.allclose(strided, exact)

    def test_matmul_segment_rescales(self):
        features = np.ones(64, dtype=np.float32)
        rp = np.ones((8, 64), dtype=np.float32)
        segmented = ref.matmul(features, rp, 0, 16, 1)
        assert np.allclose(segmented, ref.matmul(features, rp))
