"""Tests for the CPU and GPU back ends (compilation and execution)."""

import numpy as np
import pytest

from repro import hdcpp as H
from repro.backends import CPUBackend, GPUBackend, backend_for_target, compile as hdc_compile
from repro.transforms import ApproximationConfig, PerforationSpec


class TestCompileAPI:
    def test_backend_for_target(self):
        assert isinstance(backend_for_target("cpu"), CPUBackend)
        assert isinstance(backend_for_target("gpu"), GPUBackend)
        with pytest.raises(Exception):
            backend_for_target("tpu")

    def test_compiled_program_reports_inputs(self, inference_program):
        compiled = hdc_compile(inference_program, target="cpu")
        assert compiled.input_names == ["queries", "class_hvs", "rp_matrix"]
        assert "cpu" in repr(compiled)

    def test_missing_and_unknown_inputs_rejected(self, inference_program, inference_inputs):
        compiled = hdc_compile(inference_program, target="cpu")
        with pytest.raises(TypeError):
            compiled.run(queries=inference_inputs["queries"])
        with pytest.raises(TypeError):
            compiled.run(
                queries=inference_inputs["queries"],
                class_hvs=inference_inputs["class_hvs"],
                rp_matrix=inference_inputs["rp_matrix"],
                bogus=np.zeros(3),
            )

    def test_wrong_input_shape_rejected(self, inference_program, inference_inputs):
        compiled = hdc_compile(inference_program, target="cpu")
        with pytest.raises(ValueError):
            compiled.run(
                queries=inference_inputs["queries"][:, :5],
                class_hvs=inference_inputs["class_hvs"],
                rp_matrix=inference_inputs["rp_matrix"],
            )


class TestCpuGpuExecution:
    def test_cpu_and_gpu_agree_on_predictions(self, inference_program, inference_inputs):
        cpu = hdc_compile(inference_program, target="cpu")
        gpu = hdc_compile(inference_program, target="gpu")
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        cpu_out = np.asarray(cpu.run(**kwargs).output)
        gpu_out = np.asarray(gpu.run(**kwargs).output)
        assert np.array_equal(cpu_out, gpu_out)

    def test_predictions_match_labels_on_easy_data(self, inference_program, inference_inputs):
        compiled = hdc_compile(inference_program, target="gpu")
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        predictions = np.asarray(compiled.run(**kwargs).output)
        accuracy = (predictions == inference_inputs["labels"]).mean()
        assert accuracy > 0.9

    def test_execution_report_contents(self, inference_program, inference_inputs):
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        cpu_report = hdc_compile(inference_program, target="cpu").run(**kwargs).report
        gpu_report = hdc_compile(inference_program, target="gpu").run(**kwargs).report
        assert cpu_report.wall_seconds > 0
        assert cpu_report.kernel_launches > 0
        assert cpu_report.bytes_to_device == 0
        assert gpu_report.bytes_to_device > 0
        assert gpu_report.bytes_from_device > 0
        assert gpu_report.kernel_launches > 0
        assert gpu_report.device_seconds > 0
        assert gpu_report.target == "gpu"

    def test_gpu_uses_fewer_kernel_launches_than_cpu(self, inference_program, inference_inputs):
        """The GPU lowers the stage to batched routines; the CPU loops per sample."""
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        cpu_report = hdc_compile(inference_program, target="cpu").run(**kwargs).report
        gpu_report = hdc_compile(inference_program, target="gpu").run(**kwargs).report
        assert gpu_report.kernel_launches < cpu_report.kernel_launches

    def test_single_output_accessor(self, inference_program, inference_inputs):
        compiled = hdc_compile(inference_program, target="cpu")
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        result = compiled.run(**kwargs)
        assert result.output is result.outputs[next(iter(result.outputs))]


class TestGranularPrograms:
    def test_granular_program_runs_on_both_targets(self):
        prog = H.Program("granular")

        @prog.entry(H.hv(16), H.hm(8, 32), H.hm(32, 16))
        def main(query, classes, rp):
            encoded = H.sign(H.matmul(query, rp))
            sims = H.cossim(encoded, H.sign(classes))
            return H.arg_max(sims)

        rng = np.random.default_rng(3)
        rp = (rng.integers(0, 2, size=(32, 16)) * 2 - 1).astype(np.float32)
        classes = rng.normal(size=(8, 32)).astype(np.float32)
        query = rng.normal(size=16).astype(np.float32)
        for target in ("cpu", "gpu"):
            out = hdc_compile(prog, target=target).run(query=query, classes=classes, rp=rp)
            assert 0 <= int(np.asarray(out.output)) < 8

    def test_random_init_ops_execute(self):
        prog = H.Program("randoms")

        @prog.entry(H.hv(32))
        def main(x):
            r = H.random_hypervector(32, seed=7)
            g = H.gaussian_hypervector(32, seed=8)
            return H.add(H.mul(x, r), g)

        out = hdc_compile(prog, target="cpu").run(x=np.ones(32, dtype=np.float32))
        assert np.asarray(out.output).shape == (32,)

    def test_parallel_map_with_callable_runs_on_both(self):
        prog = H.Program("pmap_exec")

        def scale(row):
            return np.asarray(row) * 2.0

        @prog.entry(H.hm(6, 8))
        def main(rows):
            return H.parallel_map(scale, rows)

        data = np.arange(48, dtype=np.float32).reshape(6, 8)
        for target in ("cpu", "gpu"):
            out = np.asarray(hdc_compile(prog, target=target).run(rows=data).output)
            assert np.allclose(out, data * 2.0)


class TestApproximationsOnBackends:
    @pytest.fixture()
    def program_and_inputs(self, inference_program, inference_inputs):
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        return inference_program, kwargs, inference_inputs["labels"]

    def test_binarization_preserves_accuracy(self, program_and_inputs):
        prog, kwargs, labels = program_and_inputs
        exact = hdc_compile(prog, target="gpu").run(**kwargs)
        approx = hdc_compile(prog, target="gpu", config=ApproximationConfig(binarize=True)).run(**kwargs)
        exact_acc = (np.asarray(exact.output) == labels).mean()
        approx_acc = (np.asarray(approx.output) == labels).mean()
        assert approx_acc >= exact_acc - 0.1

    def test_binarization_reduces_transferred_bytes(self, program_and_inputs):
        prog, kwargs, _ = program_and_inputs
        exact = hdc_compile(prog, target="gpu").run(**kwargs)
        approx = hdc_compile(prog, target="gpu", config=ApproximationConfig(binarize=True)).run(**kwargs)
        assert approx.report.bytes_to_device < exact.report.bytes_to_device

    def test_perforation_preserves_accuracy_on_similarity(self, program_and_inputs):
        prog, kwargs, labels = program_and_inputs
        config = ApproximationConfig(perforations=(PerforationSpec("hamming_distance", stride=2),))
        approx = hdc_compile(prog, target="cpu", config=config).run(**kwargs)
        accuracy = (np.asarray(approx.output) == labels).mean()
        assert accuracy > 0.8

    def test_same_traced_program_compiles_under_many_configs(self, program_and_inputs):
        prog, kwargs, _ = program_and_inputs
        configs = [
            ApproximationConfig.none(),
            ApproximationConfig(binarize=True),
            ApproximationConfig(perforations=(PerforationSpec("matmul", stride=2),)),
            ApproximationConfig(binarize=True, binarize_reduce=True),
        ]
        outputs = []
        for config in configs:
            compiled = hdc_compile(prog, target="cpu", config=config)
            outputs.append(np.asarray(compiled.run(**kwargs).output))
        # Recompiling with the identity config afterwards still gives the
        # exact result (the traced program was never mutated in place).
        exact_again = np.asarray(hdc_compile(prog, target="cpu").run(**kwargs).output)
        assert np.array_equal(outputs[0], exact_again)


class TestBatchedFallback:
    """The batched stage path falls back per-row only on shape/type errors."""

    def _program_with_row_only_impl(self):
        prog = H.Program("row_only")

        def double_row(row):
            data = np.asarray(row)
            if data.ndim != 1:
                raise ValueError("row-only implementation")
            return data * 2.0

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(double_row, data, output_dim=8)

        return prog

    def test_row_only_impl_falls_back_and_records_reason(self):
        compiled = hdc_compile(self._program_with_row_only_impl(), target="gpu")
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        result = compiled.run(data=data)
        assert np.array_equal(np.asarray(result.output), data * 2.0)
        assert "parallel_map" in result.report.notes["batched_fallback"]
        assert "row-only implementation" in result.report.notes["batched_fallback"]

    def test_batchable_impl_records_no_fallback(self):
        prog = H.Program("batchable")

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(lambda rows: np.asarray(rows) * 2.0, data, output_dim=8)

        result = hdc_compile(prog, target="gpu").run(data=np.ones((4, 8), dtype=np.float32))
        assert "batched_fallback" not in result.report.notes

    def test_genuine_bugs_propagate_instead_of_falling_back(self):
        prog = H.Program("buggy")

        def buggy(rows):
            raise RuntimeError("kernel bug")

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(buggy, data, output_dim=8)

        compiled = hdc_compile(prog, target="gpu")
        with pytest.raises(RuntimeError, match="kernel bug"):
            compiled.run(data=np.ones((4, 8), dtype=np.float32))

    def test_batched_cpu_backend_matches_reference(self, inference_program, inference_inputs):
        reference = hdc_compile(inference_program, target="cpu")
        batched = CPUBackend(batched=True).compile(inference_program)
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        assert np.array_equal(
            np.asarray(reference.run(**kwargs).output), np.asarray(batched.run(**kwargs).output)
        )


class TestBoundProgram:
    def test_bound_handle_matches_full_run(self, inference_program, inference_inputs):
        compiled = hdc_compile(inference_program, target="cpu")
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        full = np.asarray(compiled.run(**kwargs).output)
        handle = compiled.bind(
            class_hvs=kwargs["class_hvs"], rp_matrix=kwargs["rp_matrix"]
        )
        assert handle.free_names == ["queries"]
        bound = np.asarray(handle.run(queries=kwargs["queries"]).output)
        assert np.array_equal(full, bound)

    def test_bound_handle_rejects_bad_inputs(self, inference_program, inference_inputs):
        compiled = hdc_compile(inference_program, target="cpu")
        with pytest.raises(TypeError):
            compiled.bind(bogus=np.zeros(3))
        handle = compiled.bind(
            class_hvs=inference_inputs["class_hvs"], rp_matrix=inference_inputs["rp_matrix"]
        )
        with pytest.raises(TypeError):
            handle.run()
        with pytest.raises(TypeError):
            handle.run(queries=inference_inputs["queries"], class_hvs=inference_inputs["class_hvs"])

    def test_bound_handle_executes_through_other_backend_instance(
        self, inference_program, inference_inputs
    ):
        compiled = hdc_compile(inference_program, target="cpu")
        kwargs = {k: v for k, v in inference_inputs.items() if k != "labels"}
        batched_backend = CPUBackend(batched=True)
        handle = compiled.bind(
            backend=batched_backend,
            class_hvs=kwargs["class_hvs"],
            rp_matrix=kwargs["rp_matrix"],
        )
        result = handle.run(queries=kwargs["queries"])
        assert np.array_equal(np.asarray(result.output), np.asarray(compiled.run(**kwargs).output))
        with pytest.raises(ValueError):
            compiled.bind(backend=GPUBackend(), class_hvs=kwargs["class_hvs"])
