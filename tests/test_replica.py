"""Tests for replica groups: rendezvous routing, pooled clients,
group-wide versioned hot-swap / read-your-writes, crash-and-resync
convergence, the decorrelated-jitter reconnect backoff with its shared
retry budget, and the gate-verdict cache on the batched host executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps.classification import classification_servable
from repro.apps.common import bipolar_random
from repro.backends import compile as hdc_compile
from repro.serving import Servable
from repro.serving.registry import StaleVersionError
from repro.serving.replica import ClientPool, ReplicaGroup, route
from repro.serving.transport import RetryBudget, ServingClient
from repro.serving.update_log import UpdateLog

DIM = 64
FEATURES = 16
CLASSES = 4


def make_updatable(name: str, seed: int = 3) -> Servable:
    """A retrainable classifier whose update rule is a pure function of
    (constants, samples, labels) — the property group-wide swap relies on."""
    rng = np.random.default_rng(seed)
    return classification_servable(
        name,
        dimension=DIM,
        similarity="hamming",
        rp_matrix=bipolar_random(DIM, FEATURES, seed=seed),
        classes=rng.standard_normal((CLASSES, DIM)).astype(np.float32),
    )


def make_frozen(name: str, seed: int = 5) -> Servable:
    """A bipolar classifier with no update rule: exact in every path."""
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            return H.arg_min(H.hamming_distance(H.sign(encoding), H.sign(class_hvs)))

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


def make_group(n: int, update_log=None, **extra) -> ReplicaGroup:
    options = dict(max_batch_size=8, max_wait_seconds=0.001, workers=("cpu",))
    options.update(extra)
    return ReplicaGroup(replicas=n, update_log=update_log, **options)


@pytest.fixture
def samples():
    rng = np.random.default_rng(17)
    return rng.standard_normal((12, FEATURES)).astype(np.float32)


@pytest.fixture
def labels():
    return np.random.default_rng(19).integers(0, CLASSES, 12)


class TestRendezvousRouting:
    def test_route_is_deterministic_and_in_candidates(self):
        for name in ("net-a", "net-b", "net-c"):
            first = route(name, range(4))
            assert first in range(4)
            assert route(name, range(4)) == first

    def test_membership_change_moves_only_the_dead_replicas_models(self):
        names = [f"model-{i}" for i in range(120)]
        before = {name: route(name, range(4)) for name in names}
        dead = 2
        survivors = [i for i in range(4) if i != dead]
        for name in names:
            after = route(name, survivors)
            if before[name] != dead:
                # Minimal disruption: a model whose replica survived
                # must not move — that is rendezvous hashing's point.
                assert after == before[name]
            else:
                assert after in survivors

    def test_routing_spreads_models_across_replicas(self):
        counts = [0] * 4
        for i in range(200):
            counts[route(f"model-{i}", range(4))] += 1
        assert all(count > 0 for count in counts)


class TestGroupSwapSemantics:
    def test_group_update_converges_bit_identically_with_pinned_reads(
        self, tmp_path, samples, labels
    ):
        servable = make_updatable("net-upd")
        log = UpdateLog(str(tmp_path / "group.updatelog"))
        with make_group(3, update_log=log) as group:
            group.register(servable)
            with ClientPool(group, timeout=30.0) as pool:
                baseline = int(pool.infer(servable.name, samples[0]))
                assert baseline in range(CLASSES)
                version = pool.update(servable.name, samples, labels)
                assert version == 2
                # Every replica independently derived the bit-identical
                # new constants — nothing was copied between them.
                offline = servable.updated(samples, labels)
                for replica in group.replicas:
                    live = replica.server.registry.get(servable.name).servable
                    assert np.array_equal(
                        live.constants["class_hvs"], offline.constants["class_hvs"]
                    )
                assert group.model_versions() == [{servable.name: 2}] * 3
                # Read-your-writes: the pinned read is served, and it
                # matches the offline retrain's one-shot execution.
                handle = hdc_compile(offline.build_program(1), target="cpu").bind(
                    **offline.constants
                )
                expected = int(np.asarray(handle.run(queries=samples[:1]).output)[0])
                assert (
                    int(pool.infer(servable.name, samples[0], min_version=version))
                    == expected
                )
        # The round was logged exactly once (not once per replica).
        records = log.read_all()
        assert len(records) == 1
        assert records[0].version == 2

    def test_kill_mid_update_then_resync_converges(self, tmp_path, samples, labels):
        servable = make_updatable("net-crash")
        log = UpdateLog(str(tmp_path / "crash.updatelog"))
        with make_group(3, update_log=log) as group:
            group.register(servable)
            group.kill(1)
            version = group.update(servable.name, samples, labels)
            assert version == 2
            assert group.alive_indices() == [0, 2]
            assert group.model_versions()[1] is None
            # Repair rebuilds from baseline + group log: same versions,
            # bit-identical constants, pinned reads accepted again.
            group.resync(1)
            assert group.alive_indices() == [0, 1, 2]
            assert group.model_versions() == [{servable.name: 2}] * 3
            reference = group.replicas[0].server.registry.get(servable.name).servable
            repaired = group.replicas[1].server.registry.get(servable.name).servable
            assert np.array_equal(
                repaired.constants["class_hvs"], reference.constants["class_hvs"]
            )
            host, port = group.replicas[1].address
            with ServingClient(host, port, timeout=30.0) as client:
                result = int(client.infer(servable.name, samples[0], min_version=version))
                assert result in range(CLASSES)
        assert len(log.read_all()) == 1

    def test_replica_failing_the_round_is_killed_not_left_stale(
        self, samples, labels
    ):
        servable = make_updatable("net-partial")
        with make_group(2) as group:
            group.register(servable)

            def explode(*args, **kwargs):
                raise RuntimeError("injected update failure")

            group.replicas[1].server.update = explode
            version = group.update(servable.name, samples, labels)
            assert version == 2
            # The failed replica must not keep serving version 1 as if
            # nothing happened — it is taken out of the group.
            assert group.alive_indices() == [0]
            assert group.replicas[1].address is None

    def test_stale_min_version_is_a_typed_refusal_over_the_wire(self, samples):
        servable = make_updatable("net-stale")
        with make_group(2) as group:
            group.register(servable)
            host, port = group.replicas[0].address
            with ServingClient(host, port, timeout=30.0) as client:
                with pytest.raises(StaleVersionError) as err:
                    client.infer(servable.name, samples[0], min_version=5)
                assert err.value.model == servable.name
                assert err.value.version == 1
                assert err.value.min_version == 5
                # The refusal is a request error, not a disconnect: the
                # same connection keeps serving un-pinned reads.
                assert int(client.infer(servable.name, samples[0])) in range(CLASSES)

    def test_update_log_replay_rebuilds_a_replica_bit_identically(
        self, tmp_path, samples, labels
    ):
        from repro.serving import InferenceServer

        servable = make_updatable("net-replay")
        log = UpdateLog(str(tmp_path / "replay.updatelog"))
        with make_group(2, update_log=log) as group:
            group.register(servable)
            group.update(servable.name, samples, labels)
            group.update(servable.name, samples[::-1], labels[::-1])
            live = group.replicas[0].server.registry.get(servable.name).servable
            live_versions = group.replicas[0].server.model_versions()
            # A cold stand-in started from the baseline + the group log
            # must reach the exact served state: same versions, same bytes.
            rebuilt = InferenceServer(workers=("cpu",), max_batch_size=8)
            rebuilt.register(make_updatable("net-replay"))
            rebuilt.start()
            try:
                log.replay(rebuilt)
                assert rebuilt.model_versions() == live_versions
                cold = rebuilt.registry.get(servable.name).servable
                assert np.array_equal(
                    cold.constants["class_hvs"], live.constants["class_hvs"]
                )
            finally:
                rebuilt.stop()


class TestClientPool:
    def test_pool_matches_single_server_bit_identically(self):
        servable = make_frozen("net-exact")
        rng = np.random.default_rng(11)
        queries = (rng.integers(0, 2, (20, DIM)) * 2 - 1).astype(np.float32)
        handle = hdc_compile(servable.build_program(1), target="cpu").bind(
            **servable.constants
        )
        expected = [
            int(np.asarray(handle.run(encodings=queries[i : i + 1]).output)[0])
            for i in range(queries.shape[0])
        ]
        with make_group(3) as group:
            group.register(servable)
            with ClientPool(group, timeout=30.0) as pool:
                served = [
                    int(pool.infer(servable.name, queries[i]))
                    for i in range(queries.shape[0])
                ]
        assert served == expected

    def test_models_reroute_only_away_from_dead_replicas(self):
        servables = [make_frozen(f"net-{k}", seed=k) for k in range(6)]
        with make_group(3) as group:
            for servable in servables:
                group.register(servable)
            with ClientPool(group, timeout=30.0) as pool:
                before = {s.name: pool.route_for(s.name) for s in servables}
                victim = before[servables[0].name]
                group.kill(victim)
                for servable in servables:
                    after = pool.route_for(servable.name)
                    if before[servable.name] == victim:
                        assert after != victim
                    else:
                        assert after == before[servable.name]
                    # Still served after the reroute.
                    sample = np.ones(DIM, dtype=np.float32)
                    assert int(pool.infer(servable.name, sample)) in range(CLASSES)

    def test_pool_over_bare_addresses_fans_updates_to_every_replica(
        self, samples, labels
    ):
        servable = make_updatable("net-wire")
        with make_group(2) as group:
            group.register(servable)
            addresses = [address for address in group.addresses() if address]
            with ClientPool(addresses, timeout=30.0) as pool:
                assert pool.update(servable.name, samples, labels) == 2
                assert pool.model_versions() == [{servable.name: 2}] * 2


class _RecordingEvent:
    """Stands in for the client's ``_closing`` event: records each backoff
    sleep instead of actually waiting."""

    def __init__(self):
        self.delays = []

    def wait(self, delay):
        self.delays.append(delay)
        return False  # not closing: keep retrying

    def set(self):
        pass

    def is_set(self):
        return False


def _client_against_restartable_server():
    """A connected client whose server is then stopped, so every request
    takes the reconnect-backoff path."""
    from repro.serving import InferenceServer
    from repro.serving.transport import TransportServer

    server = InferenceServer(workers=("cpu",), max_batch_size=8)
    server.register(make_frozen("net-gone"))
    server.start()
    transport = TransportServer(server)
    host, port = transport.start()
    return server, transport, host, port


class TestDecorrelatedJitterBackoff:
    FLOOR, CAP, RETRIES = 0.01, 0.5, 6

    def _record_backoff_sequence(self):
        """Connect a client, kill its server, record the backoff sleeps
        the next request draws before giving up."""
        server, transport, host, port = _client_against_restartable_server()
        try:
            client = ServingClient(
                host,
                port,
                timeout=5.0,
                max_retries=self.RETRIES,
                backoff_seconds=self.FLOOR,
                max_backoff_seconds=self.CAP,
            )
        finally:
            transport.stop()
            server.stop()
        recorder = _RecordingEvent()
        client._closing = recorder
        with pytest.raises((ConnectionError, OSError)):
            client.ping()
        client.close()
        return recorder.delays

    def test_backoff_draws_are_jittered_bounded_and_decorrelated(self):
        first = self._record_backoff_sequence()
        second = self._record_backoff_sequence()
        assert len(first) == self.RETRIES and len(second) == self.RETRIES
        for delays in (first, second):
            previous = self.FLOOR
            for delay in delays:
                # AWS-style decorrelated jitter: uniform over
                # [floor, 3 * previous], capped.
                assert self.FLOOR <= delay <= self.CAP
                assert delay <= max(previous, self.FLOOR) * 3.0 + 1e-12
                previous = delay
        # Deterministic exponential backoff would make these sequences
        # equal — the whole pool reconnecting in lockstep waves.  Jitter
        # means two clients observing the same outage must diverge.
        assert first != second

    def test_shared_retry_budget_bounds_the_pools_aggregate_attempts(self):
        server, transport, host, port = _client_against_restartable_server()
        budget = RetryBudget(tokens=3.0, refund=0.0)
        try:
            clients = [
                ServingClient(
                    host,
                    port,
                    timeout=5.0,
                    max_retries=10,
                    backoff_seconds=self.FLOOR,
                    max_backoff_seconds=self.CAP,
                    retry_budget=budget,
                )
                for _ in range(2)
            ]
            recorders = []
            for client in clients:
                recorder = _RecordingEvent()
                client._closing = recorder
                recorders.append(recorder)
        finally:
            transport.stop()
            server.stop()
        for client in clients:
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            client.close()
        total_sleeps = sum(len(recorder.delays) for recorder in recorders)
        # Without the shared budget each client would sleep max_retries
        # times — 20 attempts hammering the dead address.  The budget
        # bounds the *pool's* aggregate, not each client's.
        assert total_sleeps <= 3
        assert budget.exhausted > 0
        assert budget.tokens < 1.0


class TestGateVerdictCache:
    """The batched executor's accepted-verdict cache: the boundary-row
    bit-identity gate is paid once per (compiled program, bucket), elided
    on steady-state batches, and re-probed after a serialization round
    trip (the cache-restore / hot-swap path)."""

    def _profile(self, result):
        entries = result.report.notes["stage_profile"]
        assert len(entries) == 1
        return entries[0]

    def test_gate_is_paid_once_then_elided_then_reprobed(self):
        servable = make_frozen("net-gate")
        rng = np.random.default_rng(13)
        batch = (rng.integers(0, 2, (8, DIM)) * 2 - 1).astype(np.float32)
        compiled = hdc_compile(servable.build_program(8), target="cpu", batched=True)
        handle = compiled.bind(**servable.constants)

        first = handle.run(encodings=batch)
        probe = self._profile(first)
        assert probe["route"] == "vectorized"
        assert probe["gate_seconds"] > 0.0

        # Same bucket, same compiled program: the verdict is cached, so
        # the reference rows and exact comparisons are skipped entirely.
        steady = handle.run(encodings=batch)
        elided = self._profile(steady)
        assert elided["route"] == "vectorized"
        assert elided["gate_seconds"] == 0.0
        assert np.array_equal(
            np.asarray(steady.output), np.asarray(first.output)
        )

        # The verdict must not outlive the serialized artifact: a restored
        # program (the cache-persistence / hot-swap path) re-probes.
        restored = compiled.backend.deserialize_compiled(
            compiled.backend.serialize_compiled(compiled)
        )
        reprobe = self._profile(restored.bind(**servable.constants).run(encodings=batch))
        assert reprobe["route"] == "vectorized"
        assert reprobe["gate_seconds"] > 0.0
