"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    CoraConfig,
    GenomicsConfig,
    IsoletConfig,
    SpectraConfig,
    make_cora_like,
    make_genomics_dataset,
    make_isolet_like,
    make_spectral_library,
)
from repro.datasets.genomics import base_indices, kmer_tokens


class TestIsolet:
    def test_shapes_and_ranges(self, tiny_isolet):
        assert tiny_isolet.train_features.shape == (200, 617)
        assert tiny_isolet.test_features.shape == (80, 617)
        assert tiny_isolet.n_classes == 26
        assert tiny_isolet.train_labels.min() >= 0
        assert tiny_isolet.train_labels.max() < 26
        assert np.all(np.abs(tiny_isolet.train_features) <= 1.0)

    def test_deterministic_given_seed(self):
        a = make_isolet_like(IsoletConfig(n_train=50, n_test=10, seed=1))
        b = make_isolet_like(IsoletConfig(n_train=50, n_test=10, seed=1))
        assert np.array_equal(a.train_features, b.train_features)
        c = make_isolet_like(IsoletConfig(n_train=50, n_test=10, seed=2))
        assert not np.array_equal(a.train_features, c.train_features)

    def test_classes_are_separable_but_not_trivially(self):
        data = make_isolet_like(IsoletConfig(n_train=600, n_test=200, seed=3))
        centroids = np.stack(
            [data.train_features[data.train_labels == c].mean(axis=0) for c in range(26)]
        )
        sims = data.test_features @ centroids.T
        accuracy = (sims.argmax(axis=1) == data.test_labels).mean()
        assert 0.5 < accuracy <= 1.0


class TestSpectra:
    def test_structure(self, tiny_spectra):
        assert len(tiny_spectra.library) == 50
        assert len(tiny_spectra.queries) == 25
        assert tiny_spectra.library_matrix.shape == (50, tiny_spectra.config.n_bins)
        assert tiny_spectra.query_matrix.shape == (25, tiny_spectra.config.n_bins)

    def test_query_truth_indices_valid(self, tiny_spectra):
        truth = tiny_spectra.query_truth
        assert truth.min() >= 0 and truth.max() < 50

    def test_some_queries_carry_modifications(self):
        data = make_spectral_library(SpectraConfig(n_library=100, n_queries=100, seed=1))
        modified = sum(1 for q in data.queries if q.modification_bins != 0)
        assert 0 < modified < 100

    def test_queries_resemble_their_source(self, tiny_spectra):
        overlaps, mismatches = [], []
        for query in tiny_spectra.queries:
            source = tiny_spectra.library[query.library_match]
            other = tiny_spectra.library[(query.library_match + 1) % len(tiny_spectra.library)]
            overlaps.append(np.minimum(query.binned > 0, source.binned > 0).sum())
            mismatches.append(np.minimum(query.binned > 0, other.binned > 0).sum())
        assert np.mean(overlaps) > np.mean(mismatches)


class TestCora:
    def test_structure(self, tiny_cora):
        assert tiny_cora.n_nodes == 150
        assert tiny_cora.features.shape[1] == tiny_cora.config.n_features
        assert set(np.unique(tiny_cora.labels)) <= set(range(7))
        assert tiny_cora.train_nodes.size + tiny_cora.test_nodes.size == 150
        assert len(tiny_cora.adjacency_lists()) == 150

    def test_features_are_sparse_binary(self, tiny_cora):
        assert set(np.unique(tiny_cora.features)) <= {0.0, 1.0}
        density = tiny_cora.features.mean()
        assert density < 0.2

    def test_graph_is_homophilous(self):
        graph = make_cora_like(CoraConfig(n_nodes=400, seed=2))
        same, diff = 0, 0
        for u, v in graph.graph.edges():
            if graph.labels[u] == graph.labels[v]:
                same += 1
            else:
                diff += 1
        assert same > diff


class TestGenomics:
    def test_structure(self, tiny_genomics):
        assert len(tiny_genomics.genome) == 4000
        assert len(tiny_genomics.reads) == 25
        assert tiny_genomics.read_buckets.max() < tiny_genomics.n_buckets
        assert all(len(r) == tiny_genomics.config.read_length for r in tiny_genomics.reads)
        assert set(tiny_genomics.genome) <= set("ACGT")

    def test_bucket_sequences_tile_the_genome(self, tiny_genomics):
        total = sum(len(tiny_genomics.bucket_sequence(b)) for b in range(tiny_genomics.n_buckets))
        assert total == len(tiny_genomics.genome)

    def test_kmer_tokens(self):
        assert kmer_tokens("ACGTA", 3) == ["ACG", "CGT", "GTA"]
        assert kmer_tokens("AC", 3) == []
        with pytest.raises(ValueError):
            kmer_tokens("ACGT", 0)

    def test_base_indices(self):
        assert np.array_equal(base_indices("ACGT"), [0, 1, 2, 3])

    def test_reads_match_reference_mostly(self, tiny_genomics):
        config = tiny_genomics.config
        read = tiny_genomics.reads[0]
        bucket = int(tiny_genomics.read_buckets[0])
        # The read's k-mers should overlap the k-mers of its origin bucket or
        # the neighbouring bucket far more than a random region's.
        region = tiny_genomics.bucket_sequence(bucket)
        read_kmers = set(kmer_tokens(read, config.kmer_length))
        region_kmers = set(kmer_tokens(region, config.kmer_length))
        assert len(read_kmers & region_kmers) > 0
