"""Tests for the approximation transforms (binarization and perforation)."""

import numpy as np
import pytest

from repro import hdcpp as H
from repro.ir.builder import clone_program
from repro.ir.ops import Opcode
from repro.transforms import (
    ApproximationConfig,
    AutomaticBinarization,
    PassPipeline,
    PerforationSpec,
    ReductionPerforation,
)


def build_inference_program():
    """matmul -> sign -> hamming(sign(classes)) -> argmin, plus a red_perf."""
    prog = H.Program("transform_test")

    @prog.entry(H.hv(16), H.hm(6, 64), H.hm(64, 16))
    def main(query, classes, rp):
        encoded = H.sign(H.matmul(query, rp))
        distances = H.hamming_distance(encoded, H.sign(classes))
        H.red_perf(distances, 0, 32, 2)
        return H.arg_min(distances)

    return prog


class TestAutomaticBinarization:
    def test_taints_sign_connected_values(self):
        prog = clone_program(build_inference_program())
        report = AutomaticBinarization().run(prog)
        assert report.tainted_ops >= 3
        assert report.binarized_values >= 2
        ops = {op.opcode: op for op in prog.function("main").ops}
        # The encoded hypervector (matmul result) and the sign outputs are 1-bit.
        assert ops[Opcode.MATMUL].result.type.element.is_binary
        assert ops[Opcode.SIGN].result.type.element.is_binary
        # The similarity output stays a full-precision score vector.
        assert not ops[Opcode.HAMMING_DISTANCE].result.type.element.is_binary

    def test_binarizes_program_inputs_reached_by_sign(self):
        prog = clone_program(build_inference_program())
        report = AutomaticBinarization().run(prog)
        classes_param = prog.function("main").params[1]
        assert classes_param.type.element.is_binary
        assert any("classes" in name for name in report.binarized_params)

    def test_data_movement_reduction_reported(self):
        prog = clone_program(build_inference_program())
        report = AutomaticBinarization().run(prog)
        assert report.data_movement_reduction == pytest.approx(32.0)

    def test_binarize_reduce_taints_reduce_inputs(self):
        prog = clone_program(build_inference_program())
        AutomaticBinarization(binarize_reduce=True).run(prog)
        matmul = next(op for op in prog.function("main").ops if op.opcode == Opcode.MATMUL)
        # The feature input of the encoding matmul now carries a reduced
        # integer precision (configuration IV of Table 3).
        assert matmul.operands[0].type.element is H.int32

    def test_no_sign_means_no_change(self):
        prog = H.Program("nosign")

        @prog.entry(H.hv(8), H.hm(4, 8))
        def main(q, c):
            return H.arg_max(H.cossim(q, c))

        report = AutomaticBinarization().run(prog)
        assert report.tainted_ops == 0
        assert report.binarized_values == 0

    def test_allocation_attrs_updated(self):
        prog = H.Program("alloc")

        @prog.entry(H.hv(32))
        def main(x):
            r = H.random_hypervector(32, seed=1)
            return H.mul(H.sign(x), H.sign(r))

        AutomaticBinarization().run(prog)
        random_op = next(op for op in prog.function("main").ops if op.opcode == Opcode.RANDOM_HYPERVECTOR)
        assert random_op.attrs["element"].is_binary

    def test_idempotent(self):
        prog = clone_program(build_inference_program())
        AutomaticBinarization().run(prog)
        second = AutomaticBinarization().run(prog)
        assert second.binarized_values == 0 or second.bytes_before == second.bytes_after


class TestReductionPerforation:
    def test_folds_red_perf_directive(self):
        prog = clone_program(build_inference_program())
        report = ReductionPerforation().run(prog)
        assert report.folded_directives == 1
        ops = prog.function("main").ops
        assert all(op.opcode != Opcode.RED_PERF for op in ops)
        hamming = next(op for op in ops if op.opcode == Opcode.HAMMING_DISTANCE)
        assert hamming.attrs["perf_begin"] == 0
        assert hamming.attrs["perf_end"] == 32
        assert hamming.attrs["perf_stride"] == 2

    def test_external_spec_applies_to_matching_ops(self):
        prog = clone_program(build_inference_program())
        spec = PerforationSpec("matmul", begin=0, end=None, stride=4)
        report = ReductionPerforation([spec]).run(prog)
        assert report.applied_specs == 1
        matmul = next(op for op in prog.function("main").ops if op.opcode == Opcode.MATMUL)
        assert matmul.attrs["perf_stride"] == 4

    def test_spec_function_filter(self):
        prog = clone_program(build_inference_program())
        spec = PerforationSpec("matmul", stride=2, function="not_this_function")
        report = ReductionPerforation([spec]).run(prog)
        assert report.applied_specs == 0

    def test_red_perf_on_non_reduce_rejected(self):
        prog = H.Program("bad")

        @prog.entry(H.hv(8))
        def main(x):
            y = H.sign(x)
            H.red_perf(y, 0, 8, 2)
            return y

        with pytest.raises(ValueError):
            ReductionPerforation().run(prog)

    def test_spec_opcode_resolution(self):
        assert PerforationSpec("hamming_distance").resolved_opcode() == Opcode.HAMMING_DISTANCE
        assert PerforationSpec(Opcode.COSSIM).resolved_opcode() == Opcode.COSSIM
        with pytest.raises(KeyError):
            PerforationSpec("not_a_reduce").resolved_opcode()


class TestPipelineAndConfig:
    def test_identity_config(self):
        config = ApproximationConfig.none()
        assert config.is_identity
        passes = config.build_passes()
        assert len(passes) == 1  # perforation fold always runs (for red_perf)

    def test_config_builds_binarization_pass(self):
        config = ApproximationConfig(binarize=True)
        assert not config.is_identity
        names = [p.name for p in config.build_passes()]
        assert "automatic-binarization" in names

    def test_with_perforation_appends(self):
        config = ApproximationConfig(binarize=True).with_perforation(PerforationSpec("matmul", stride=2))
        assert len(config.perforations) == 1
        assert config.binarize

    def test_pipeline_runs_and_verifies(self):
        prog = clone_program(build_inference_program())
        pipeline = PassPipeline.from_config(
            ApproximationConfig(binarize=True, perforations=(PerforationSpec("matmul", stride=2),))
        )
        report = pipeline.run(prog)
        assert "automatic-binarization" in report
        assert "reduction-perforation" in report
        assert report["reduction-perforation"].folded_directives == 1

    def test_pipeline_reports_are_accessible_by_name(self):
        prog = clone_program(build_inference_program())
        report = PassPipeline.from_config(ApproximationConfig(binarize=True)).run(prog)
        assert report["automatic-binarization"].binarized_values > 0
        assert "nonexistent-pass" not in report
