"""Tests for lowering traced programs to the HPVM-HDC dataflow graph."""

import pytest

from repro import hdcpp as H
from repro.ir import lower_program, print_graph, verify_graph, verify_program
from repro.ir.builder import clone_program
from repro.ir.dataflow import DataflowGraph, InternalNode, LeafNode, Target
from repro.ir.ops import Opcode, infer_result_type
from repro.ir.verifier import IRVerificationError


def build_inference_program():
    prog = H.Program("lowering_test")

    @prog.define(H.hv(16), H.hm(5, 64), H.hm(64, 16))
    def infer_one(query, classes, rp):
        encoded = H.sign(H.matmul(query, rp))
        return H.arg_min(H.hamming_distance(encoded, classes))

    @prog.entry(H.hm(20, 16), H.hm(5, 64), H.hm(64, 16))
    def main(queries, classes, rp):
        return H.inference_loop(infer_one, queries, classes, encoder=rp)

    return prog


class TestLowering:
    def test_granular_ops_become_leaf_nodes(self):
        prog = H.Program("granular")

        @prog.entry(H.hv(16), H.hm(5, 64), H.hm(64, 16))
        def main(query, classes, rp):
            encoded = H.sign(H.matmul(query, rp))
            distances = H.hamming_distance(encoded, classes)
            return H.arg_min(distances)

        graph = lower_program(prog)
        assert len(graph.leaf_nodes()) == 4
        assert all(isinstance(node, LeafNode) for node in graph.nodes.values())
        verify_graph(graph)

    def test_edges_follow_dataflow(self):
        prog = H.Program("edges")

        @prog.entry(H.hv(16), H.hm(64, 16))
        def main(query, rp):
            return H.sign(H.matmul(query, rp))

        graph = lower_program(prog)
        # Two boundary inputs feed the matmul node, which feeds sign, which
        # feeds the boundary output.
        boundary_in = [e for e in graph.edges if e.src == DataflowGraph.BOUNDARY]
        boundary_out = [e for e in graph.edges if e.dst == DataflowGraph.BOUNDARY]
        assert len(boundary_in) == 2
        assert len(boundary_out) == 1

    def test_reduce_nodes_get_dynamic_instances(self):
        prog = H.Program("instances")

        @prog.entry(H.hv(64), H.hm(5, 64))
        def main(query, classes):
            return H.hamming_distance(query, classes)

        graph = lower_program(prog)
        hamming_node = next(n for n in graph.leaf_nodes() if n.ops[0].opcode == Opcode.HAMMING_DISTANCE)
        assert hamming_node.dynamic_instances == 5

    def test_stage_node_carries_impl_graph_and_targets(self):
        graph = lower_program(build_inference_program())
        stage_nodes = [n for n in graph.leaf_nodes() if n.ops[0].opcode == Opcode.INFERENCE_LOOP]
        assert len(stage_nodes) == 1
        stage = stage_nodes[0]
        assert stage.impl_graph is not None
        assert Target.HDC_ASIC in stage.targets and Target.HDC_RERAM in stage.targets
        assert len(stage.impl_graph.leaf_nodes()) == 4
        verify_graph(graph)

    def test_parallel_map_becomes_internal_node(self):
        prog = H.Program("pmap")

        @prog.define(H.hv(8), H.hm(32, 8))
        def encode(row, rp):
            return H.sign(H.matmul(row, rp))

        @prog.entry(H.hm(12, 8), H.hm(32, 8))
        def main(rows, rp):
            return H.parallel_map(encode, rows, rp, output_dim=32)

        graph = lower_program(prog)
        internal = graph.internal_nodes()
        assert len(internal) == 1
        assert internal[0].dynamic_instances == 12
        assert internal[0].subgraph is not None
        assert internal[0].op is not None
        verify_graph(graph)

    def test_topological_order_and_walks(self):
        graph = lower_program(build_inference_program())
        order = graph.topological_order()
        assert len(order) == len(graph.nodes)
        all_ops = list(graph.walk_ops())
        assert any(op.opcode == Opcode.MATMUL for _, op in all_ops)
        assert len(list(graph.walk_values())) > 0

    def test_annotate_targets(self):
        graph = lower_program(build_inference_program())
        graph.annotate_targets([Target.CPU])
        assert all(node.targets == {Target.CPU} for node in graph.walk_nodes())

    def test_printer_renders_hierarchy(self):
        graph = lower_program(build_inference_program())
        text = print_graph(graph)
        assert "hdc.inference_loop" in text
        assert "implementation graph" in text
        assert "edge" in text


class TestCloneProgram:
    def test_clone_is_deep(self):
        prog = build_inference_program()
        clone = clone_program(prog)
        assert set(clone.functions) == set(prog.functions)
        original_op = prog.function("infer_one").ops[0]
        cloned_op = clone.function("infer_one").ops[0]
        assert original_op is not cloned_op
        assert original_op.result is not cloned_op.result
        # Mutating the clone's types must not affect the original.
        cloned_op.result.type = cloned_op.result.type.with_element(H.binary)
        assert original_op.result.type.element is H.float32

    def test_clone_verifies(self):
        clone = clone_program(build_inference_program())
        verify_program(clone)
        verify_graph(lower_program(clone))


class TestVerifier:
    def test_valid_program_passes(self):
        verify_program(build_inference_program())

    def test_red_perf_on_non_reduce_rejected(self):
        prog = H.Program("bad_red_perf")

        @prog.entry(H.hv(8))
        def main(x):
            y = H.sign(x)
            H.red_perf(y, 0, 8, 2)
            return y

        with pytest.raises(IRVerificationError):
            verify_program(prog)

    def test_type_inference_shape_mismatch_detected(self):
        prog = H.Program("bad_types")

        @prog.entry(H.hv(8), H.hm(4, 8))
        def main(q, c):
            return H.hamming_distance(q, c)

        # Corrupt the recorded result type to a wrong shape.
        op = prog.function("main").ops[0]
        op.result.type = H.hv(99)
        with pytest.raises(IRVerificationError):
            verify_program(prog)

    def test_missing_target_annotation_detected(self):
        graph = lower_program(build_inference_program())
        next(iter(graph.nodes.values())).targets = set()
        with pytest.raises(IRVerificationError):
            verify_graph(graph)


class TestTypeInference:
    def test_sign_preserves_element(self):
        assert infer_result_type(Opcode.SIGN, [H.hv(8, H.int16)]) == H.hv(8, H.int16)

    def test_similarity_result_shapes(self):
        assert infer_result_type(Opcode.COSSIM, [H.hv(8), H.hm(3, 8)]) == H.hv(3)
        assert infer_result_type(Opcode.HAMMING_DISTANCE, [H.hm(4, 8), H.hm(3, 8)]) == H.hm(4, 3)
        assert infer_result_type(Opcode.COSSIM, [H.hv(8), H.hv(8)]) == H.ScalarType(H.float32)

    def test_matmul_requires_matching_contraction(self):
        with pytest.raises(TypeError):
            infer_result_type(Opcode.MATMUL, [H.hv(8), H.hm(4, 9)])

    def test_argmin_matrix_returns_index_vector(self):
        assert infer_result_type(Opcode.ARG_MIN, [H.hm(7, 3)]) == H.IndexVectorType(7)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(KeyError):
            infer_result_type("not-an-op", [])
