"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import hdcpp as H
from repro.datasets import (
    CoraConfig,
    GenomicsConfig,
    IsoletConfig,
    SpectraConfig,
    make_cora_like,
    make_genomics_dataset,
    make_isolet_like,
    make_spectral_library,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_isolet():
    """A very small ISOLET-like dataset (fast, still 26 classes)."""
    return make_isolet_like(IsoletConfig(n_train=200, n_test=80, seed=5))


@pytest.fixture(scope="session")
def tiny_spectra():
    return make_spectral_library(SpectraConfig(n_library=50, n_queries=25, seed=5))


@pytest.fixture(scope="session")
def tiny_cora():
    return make_cora_like(CoraConfig(n_nodes=150, seed=5))


@pytest.fixture(scope="session")
def tiny_genomics():
    return make_genomics_dataset(GenomicsConfig(genome_length=4000, n_reads=25, seed=5))


@pytest.fixture()
def inference_program():
    """A small HD-Classification-style inference program (traced)."""
    features, dim, classes = 32, 256, 6
    prog = H.Program("test_inference")

    @prog.define(H.hv(features), H.hm(classes, dim), H.hm(dim, features))
    def infer_one(query, class_hvs, rp_matrix):
        encoded = H.sign(H.matmul(query, rp_matrix))
        distances = H.hamming_distance(encoded, H.sign(class_hvs))
        return H.arg_min(distances)

    @prog.entry(H.hm(40, features), H.hm(classes, dim), H.hm(dim, features))
    def main(queries, class_hvs, rp_matrix):
        return H.inference_loop(infer_one, queries, class_hvs, encoder=rp_matrix)

    return prog


@pytest.fixture()
def inference_inputs(rng):
    """Concrete inputs matching :func:`inference_program`."""
    features, dim, classes, queries = 32, 256, 6, 40
    prototypes = rng.normal(size=(classes, features))
    labels = rng.integers(0, classes, size=queries)
    data = prototypes[labels] + 0.3 * rng.normal(size=(queries, features))
    rp = (rng.integers(0, 2, size=(dim, features)) * 2 - 1).astype(np.float32)
    encoded_protos = np.sign(prototypes @ rp.T).astype(np.float32)
    return {
        "queries": data.astype(np.float32),
        "class_hvs": encoded_protos,
        "rp_matrix": rp,
        "labels": labels,
    }
