"""Tests for the uint64 packed-bit serving plane (packed class memory).

A deployment whose approximation config enables binarization opts its
class memory into packed residency: the packable entry constants are
packed once per deployment (register / hot-swap), bound as
:class:`~repro.kernels.binary.PackedBits` words, and served through the
word-parallel Hamming kernels.  The contracts under test:

* predictions are bit-identical to the binarized-but-unpacked route;
* ``ServerStats`` surfaces the residency document (>= 25x smaller
  resident class memory, 32x exactly for float32 sources) and the
  Prometheus exposition renders it as per-model gauges;
* online update -> hot-swap -> ``UpdateLog.replay()`` rebuilds
  bit-identical packed constants, because packing is a pure function of
  the replayed float state;
* sharded deployments pack per shard and aggregate residency.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.serving.registry as registry_mod
from repro.apps import HDClassificationInference
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import InferenceServer, UpdateLog
from repro.serving.observability.prometheus import parse_prometheus_text, render_prometheus
from repro.transforms import ApproximationConfig


@pytest.fixture(scope="module")
def dataset():
    return make_isolet_like(
        IsoletConfig(n_features=48, n_classes=6, n_train=180, n_test=48, seed=21)
    )


def make_servable(dataset):
    app = HDClassificationInference(dimension=256, similarity="hamming")
    return app.as_servable(dataset=dataset, name="isolet")


def packed_config():
    return ApproximationConfig(binarize=True)


def rounds(dataset, n=3):
    return [
        (dataset.train_features[i::n], dataset.train_labels[i::n].astype(np.int64))
        for i in range(n)
    ]


def packed_constant_bytes(server, name):
    """The packed class-memory words a deployment currently serves."""
    deployment = server.registry.get(name)
    with deployment._lock:
        return {
            param: np.ascontiguousarray(packed).tobytes()
            for param, packed in deployment._packed_constants.items()
        }


class TestPackedResidency:
    def test_stats_surface_packed_class_memory(self, dataset):
        servable = make_servable(dataset)
        server = InferenceServer(workers=("cpu",))
        server.register(servable, config=packed_config())
        with server:
            predictions = server.infer_many("isolet", list(dataset.test_features[:16]))
            stats = server.stats()
        split = stats.model_stats["isolet"]
        residency = split["residency"]
        assert residency is not None and residency["packed"]
        assert "class_hvs" in residency["params"]
        # float32 class memory packs 32x smaller; the criterion is >= 25x.
        assert residency["shrink_ratio"] >= 25
        assert residency["class_memory_bytes"] * 25 <= residency["class_memory_unpacked_bytes"]
        # The packed route must never trip the per-row boundary gate.
        assert split["fallback_stages"] == 0
        assert len(predictions) == 16

    def test_packed_predictions_match_binarized_unpacked(self, dataset, monkeypatch):
        servable = make_servable(dataset)
        queries = list(dataset.test_features[:24])

        server = InferenceServer(workers=("cpu",))
        server.register(servable, config=packed_config())
        with server:
            packed = server.infer_many("isolet", queries)

        # Same binarized program, packing disabled: the reference route.
        monkeypatch.setattr(registry_mod, "packable_entry_params", lambda program: [])
        unpacked_server = InferenceServer(workers=("cpu",))
        unpacked_server.register(servable, config=packed_config())
        with unpacked_server:
            unpacked = unpacked_server.infer_many("isolet", queries)

        for a, b in zip(packed, unpacked):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_unpacked_deployment_reports_no_residency(self, dataset):
        servable = make_servable(dataset)
        server = InferenceServer(workers=("cpu",))
        server.register(servable)  # no binarize config -> no packing
        with server:
            server.infer_many("isolet", list(dataset.test_features[:4]))
            stats = server.stats()
        assert stats.model_stats["isolet"]["residency"] is None

    def test_prometheus_renders_residency_gauges(self, dataset):
        servable = make_servable(dataset)
        server = InferenceServer(workers=("cpu",))
        server.register(servable, config=packed_config())
        with server:
            server.infer_many("isolet", list(dataset.test_features[:4]))
            stats = server.stats()
        samples = parse_prometheus_text(render_prometheus(stats.to_dict()))
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample.name, []).append(sample)
        resident = by_name["hdc_serving_model_class_memory_bytes"]
        unpacked = by_name["hdc_serving_model_class_memory_unpacked_bytes"]
        assert resident[0].labels["model"] == "isolet"
        assert unpacked[0].value >= 25 * resident[0].value

    def test_sharded_deployment_aggregates_residency(self, dataset):
        servable = make_servable(dataset)
        server = InferenceServer(workers=("cpu", "cpu"))
        server.register(servable, config=packed_config(), shards=2)
        with server:
            sharded = server.infer_many("isolet", list(dataset.test_features[:16]))
            stats = server.stats()
        residency = stats.model_stats["isolet"]["residency"]
        assert residency is not None and residency["shards"] == 2
        assert residency["shrink_ratio"] >= 25

        plain = InferenceServer(workers=("cpu",))
        plain.register(servable, config=packed_config())
        with plain:
            unsharded = plain.infer_many("isolet", list(dataset.test_features[:16]))
        for a, b in zip(sharded, unsharded):
            assert np.array_equal(np.asarray(a), np.asarray(b))


class TestPackedReplay:
    def test_replay_rebuilds_bit_identical_packed_constants(self, tmp_path, dataset):
        """Online update -> hot-swap -> UpdateLog.replay(): the restarted
        server's packed class memory is byte-identical to the live one's,
        because packing is a deterministic function of the replayed float
        constants."""
        queries = list(dataset.test_features)
        log = UpdateLog(tmp_path / "u.log")

        live = InferenceServer(workers=("cpu",), update_log=log)
        live.register(make_servable(dataset), config=packed_config())
        with live:
            versions = [
                live.update("isolet", samples, labels) for samples, labels in rounds(dataset)
            ]
            live_predictions = live.infer_many("isolet", queries)
            live_packed = packed_constant_bytes(live, "isolet")
        assert versions == [2, 3, 4]
        assert live_packed, "live server never packed its class memory"

        restarted = InferenceServer(workers=("cpu",), update_log=log)
        restarted.register(make_servable(dataset), config=packed_config())
        with restarted:
            assert log.replay(restarted) == versions
            replayed_predictions = restarted.infer_many("isolet", queries)
            replayed_packed = packed_constant_bytes(restarted, "isolet")

        assert replayed_packed == live_packed
        for a, b in zip(live_predictions, replayed_predictions):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_swap_repacks_updated_class_memory(self, dataset):
        """Each online round's hot-swap serves freshly packed constants —
        the packed bytes change with the float state they derive from."""
        server = InferenceServer(workers=("cpu",))
        server.register(make_servable(dataset), config=packed_config())
        with server:
            server.infer_many("isolet", list(dataset.test_features[:4]))
            before = packed_constant_bytes(server, "isolet")
            samples, labels = rounds(dataset)[0]
            server.update("isolet", samples, labels)
            server.infer_many("isolet", list(dataset.test_features[:4]))
            after = packed_constant_bytes(server, "isolet")
        assert before and after
        assert before != after
