"""Tests for the observability plane (repro.serving.observability).

Covers the log-linear latency histogram (accuracy against exact
quantiles, mergeability, bounded memory, and the bursty-traffic
regression the old fixed-size sample window got wrong), per-request
tracing (contiguous span tiling, tail-based retention, hot-swap retry
hygiene), the Prometheus text exposition (render + in-tree lint), and
the histogram-aware dotted paths of ``tools/scrape_stats.py``.
"""

from __future__ import annotations

import collections
import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps.common import bipolar_random
from repro.serving import (
    InferenceServer,
    LatencyHistogram,
    ModelRegistry,
    RequestBroker,
    Servable,
    TraceContext,
    WorkerPool,
    chrome_trace,
    parse_prometheus_text,
    percentile as exact_percentile,
    render_prometheus,
)
from repro.serving.observability import DEFAULT_RELATIVE_ERROR, RequestTracer
from repro.serving.transport import ServingClient, TransportServer

DIM = 128
CLASSES = 6


def make_servable(seed: int = 7, name: str = "obs-model") -> Servable:
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            distances = H.hamming_distance(H.sign(encoding), H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


def queries(n: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 2, (n, DIM)) * 2 - 1).astype(np.float32)


def _load_tool(name: str):
    path = pathlib.Path(__file__).resolve().parent.parent / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------------------
# Log-linear latency histogram
# ---------------------------------------------------------------------------


class TestLatencyHistogram:
    def test_quantiles_within_relative_error_on_10k_fixture(self):
        """The headline accuracy contract: on a 10k-sample heavy-tailed
        fixture every quantile estimate is within the documented
        relative-error bound of the exact nearest-rank quantile."""
        rng = np.random.default_rng(42)
        samples = rng.lognormal(mean=-5.0, sigma=1.2, size=10_000)
        hist = LatencyHistogram()
        hist.record_many(samples)
        assert hist.count == 10_000
        assert hist.sum == pytest.approx(float(samples.sum()))
        for p in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            exact = exact_percentile(sorted(samples), p)
            estimate = hist.percentile(p)
            assert estimate == pytest.approx(exact, rel=DEFAULT_RELATIVE_ERROR), (
                f"p{p}: estimate {estimate} vs exact {exact}"
            )

    def test_min_max_are_exact(self):
        hist = LatencyHistogram()
        hist.record_many([0.004, 0.002, 0.9, 0.0301])
        assert hist.min == 0.002
        assert hist.max == 0.9
        # Quantile estimates clamp to the exact extremes.
        assert hist.percentile(0) == 0.002
        assert hist.percentile(100) == 0.9

    def test_merge_matches_combined_recording(self):
        rng = np.random.default_rng(3)
        a_samples = rng.exponential(0.01, 4000)
        b_samples = rng.exponential(0.08, 3000)
        a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        a.record_many(a_samples)
        b.record_many(b_samples)
        combined.record_many(a_samples)
        combined.record_many(b_samples)
        merged = a.copy().merge(b)  # merge folds in place; keep `a` intact
        assert merged.count == combined.count == 7000
        assert merged.sum == pytest.approx(combined.sum)
        assert merged.min == combined.min
        assert merged.max == combined.max
        for p in (50, 95, 99):
            assert merged.percentile(p) == combined.percentile(p)
        assert a.count == 4000 and b.count == 3000

    def test_merge_rejects_incompatible_resolution(self):
        coarse = LatencyHistogram(relative_error=0.1)
        fine = LatencyHistogram(relative_error=0.01)
        assert not coarse.compatible(fine)
        with pytest.raises(ValueError):
            coarse.merge(fine)

    def test_serialization_round_trip(self):
        rng = np.random.default_rng(9)
        hist = LatencyHistogram()
        hist.record_many(rng.lognormal(-4, 1.0, 2500))
        restored = LatencyHistogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert restored.count == hist.count
        assert restored.sum == pytest.approx(hist.sum)
        assert restored.min == hist.min and restored.max == hist.max
        for p in (50, 90, 99):
            assert restored.percentile(p) == hist.percentile(p)
        assert restored.cumulative_buckets() == hist.cumulative_buckets()

    def test_memory_stays_bounded_by_dynamic_range_not_count(self):
        """A stream spanning five orders of magnitude occupies a few
        hundred buckets — constant in the number of samples (the old
        deque window held every sample up to its 8192 cap)."""
        rng = np.random.default_rng(17)
        hist = LatencyHistogram()
        hist.record_many(10.0 ** rng.uniform(-5, 1, 50_000))
        assert hist.count == 50_000
        assert hist.bucket_count < 400

    def test_bursty_sequence_regression_vs_sample_window(self):
        """The regression the histogram fixes: a burst of fast requests
        used to evict an earlier slow phase out of the 8192-sample deque
        window, so the reported p99 silently forgot the slow phase.  The
        histogram keeps exact counts for the whole interval."""
        rng = np.random.default_rng(23)
        slow_phase = rng.normal(0.100, 0.005, 3000).clip(min=1e-4)  # 100ms era
        fast_burst = rng.normal(0.001, 0.0001, 12_000).clip(min=1e-4)  # then 1ms burst
        stream = np.concatenate([slow_phase, fast_burst])

        window = collections.deque(maxlen=8192)  # the old collector
        hist = LatencyHistogram()
        for value in stream:
            window.append(value)
            hist.record(value)

        true_p99 = exact_percentile(sorted(stream), 99)
        window_p99 = exact_percentile(sorted(window), 99)
        hist_p99 = hist.percentile(99)

        # 3000 of 15000 samples are ~100ms, so the true p99 is ~100ms...
        assert true_p99 > 0.09
        # ...which the evicted window has completely forgotten...
        assert window_p99 < 0.01
        # ...while the histogram reports it within its error bound.
        assert hist_p99 == pytest.approx(true_p99, rel=DEFAULT_RELATIVE_ERROR)


# ---------------------------------------------------------------------------
# Tracing primitives
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_steps_tile_the_request_lifetime_exactly(self):
        trace = TraceContext("m", started_at=100.0)
        trace.step("queue", now=100.010)
        trace.step("batch", now=100.012)
        trace.span("stage:child", 100.012, 100.018)  # nested; no cursor move
        trace.step("execute", now=100.020)
        trace.step("settle", now=100.021)
        top_level = [s for s in trace.spans if not s.name.startswith("stage:")]
        assert sum(s.duration for s in top_level) == pytest.approx(trace.duration)
        assert trace.duration == pytest.approx(0.021)

    def test_first_failure_wins(self):
        trace = TraceContext("m")
        trace.fail("first")
        trace.fail("second")
        assert trace.error == "first"


class TestRequestTracerRetention:
    def test_slo_violators_always_retained_while_rings_stay_bounded(self):
        """A flood of healthy traffic must never evict violators, and
        total buffered traces stay <= 2 * capacity regardless of load."""
        tracer = RequestTracer(capacity=16, sample_every=1000)
        violator_ids = []
        for i in range(2000):
            trace = tracer.begin("m")
            trace.step("settle")
            if i % 100 == 0:  # 20 violators among 2000 requests
                trace.slo_violated = True
                violator_ids.append(trace.trace_id)
            assert tracer.finish(trace) in (True, False)
        assert len(tracer) <= 2 * tracer.capacity
        kept = tracer.traces()
        kept_violators = [t["trace_id"] for t in kept if t["slo_violated"]]
        # The *newest* `capacity` violators survive; healthy floods can't
        # push them out because the rings are separate.
        assert kept_violators == violator_ids[-16:]

    def test_error_traces_always_retained(self):
        tracer = RequestTracer(capacity=8, sample_every=10_000)
        trace = tracer.begin("m")
        trace.fail("boom")
        assert tracer.finish(trace) is True
        assert tracer.traces()[0]["error"] == "boom"

    def test_healthy_traffic_sampled_one_in_n(self):
        tracer = RequestTracer(capacity=1000, sample_every=10)
        kept = sum(tracer.finish(tracer.begin("m")) for _ in range(100))
        assert kept == 10
        assert tracer.stats()["finished"] == 100

    def test_traces_limit_and_clear(self):
        tracer = RequestTracer(capacity=32, sample_every=1)
        for _ in range(5):
            tracer.finish(tracer.begin("m"))
        assert len(tracer.traces(limit=2)) == 2
        assert len(tracer.traces(clear=True)) == 5
        assert len(tracer) == 0


# ---------------------------------------------------------------------------
# End-to-end tracing through the broker
# ---------------------------------------------------------------------------


class TestBrokerTracing:
    def _server(self, **kwargs) -> InferenceServer:
        server = InferenceServer(
            max_batch_size=8, max_wait_seconds=0.001, tracing=True, **kwargs
        )
        server.register(make_servable(), warm=False)
        return server

    def test_traced_request_records_full_span_chain(self):
        """One traced infer yields >= 6 named spans whose top-level
        self-times tile the measured end-to-end latency exactly (the
        contiguous-cursor contract, checked to float precision)."""
        with self._server() as server:
            for q in queries(6):
                server.infer("obs-model", q)
            server.drain()
            traces = server.traces()
        assert traces, "tracing enabled but nothing retained"
        for trace in traces:
            names = [span["name"] for span in trace["spans"]]
            top_level = [s for s in trace["spans"] if not s["name"].startswith("stage:")]
            assert len(top_level) >= 6, names
            for required in ("queue", "batch", "schedule", "dispatch", "execute", "settle"):
                assert required in names, names
            assert any(name.startswith("stage:") for name in names), names
            tiled_ms = sum(s["duration_ms"] for s in top_level)
            assert tiled_ms == pytest.approx(trace["duration_ms"], rel=1e-6)
            assert trace["error"] is None

    def test_stage_profile_surfaces_in_model_stats(self):
        with self._server() as server:
            for q in queries(8):
                server.infer("obs-model", q)
            server.drain()
            stats = server.stats().to_dict()
        profile = stats["model_stats"]["obs-model"]["stage_profile"]
        assert profile, "executor stage profile missing from model stats"
        for slot in profile.values():
            assert slot["executions"] >= 1
            assert slot["seconds"] > 0.0
            assert slot["vectorized"] + slot["fallbacks"] == slot["executions"]
            assert slot["bucket"] >= 1

    def test_model_stats_carry_histograms_and_derived_quantiles(self):
        with self._server() as server:
            for q in queries(10):
                server.infer("obs-model", q)
            server.drain()
            stats = server.stats().to_dict()
        model = stats["model_stats"]["obs-model"]
        for key in ("latency", "queue_wait", "execute"):
            hist = LatencyHistogram.from_dict(model["histograms"][key])
            assert hist.count == 10
        assert model["latency_p99_ms"] == pytest.approx(
            LatencyHistogram.from_dict(model["histograms"]["latency"]).percentile(99) * 1e3
        )
        assert stats["latency_histogram"]["count"] == 10

    def test_hot_swap_retry_reuses_the_same_trace(self):
        """Trace-context hygiene across the broker's retry-on-
        BatcherClosed path: the retried request keeps its original trace
        id and records an explicit ``retry`` span — a second trace for
        the same request would double-count it."""
        servable = make_servable(name="retry-model")
        registry = ModelRegistry()
        deployment = registry.register(servable, warm_batch_sizes=())
        broker = RequestBroker(
            registry,
            WorkerPool(("cpu",)),
            max_batch_size=8,
            max_wait_seconds=0.001,
            tracing=True,
        )
        broker.add_model(deployment)
        broker.start()
        try:
            victim = broker._batchers[servable.name]
            real_submit = victim.submit
            fired = []

            def closing_submit(sample, **kwargs):
                if not fired:
                    fired.append(True)
                    # Hot-swap lands between submit's batcher fetch and
                    # its enqueue, closing the fetched batcher.
                    broker.add_model(registry.register(servable, warm_batch_sizes=()))
                return real_submit(sample, **kwargs)

            victim.submit = closing_submit
            future = broker.submit(servable.name, queries(1)[0])
            broker.drain()
            assert fired and victim.closed
            assert 0 <= int(np.asarray(future.result(timeout=5.0))) < CLASSES

            retried = [t for t in broker.traces() if "retry" in [s["name"] for s in t["spans"]]]
            assert len(retried) == 1, "the retried request must surface exactly one trace"
            trace = retried[0]
            names = [span["name"] for span in trace["spans"]]
            # Same trace carries the whole post-retry lifecycle: the id
            # was minted once, before the retry.
            for required in ("retry", "queue", "execute", "settle"):
                assert required in names, names
            assert broker.tracer.stats()["started"] == 1
        finally:
            broker.stop()


# ---------------------------------------------------------------------------
# Socket transport: traces and the metrics exposition over the wire
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_stack():
    server = InferenceServer(max_batch_size=8, max_wait_seconds=0.001, tracing=True)
    server.register(make_servable(name="wire-model"), warm=False, slo_ms=10_000.0)
    server.start()
    transport = TransportServer(server, host="127.0.0.1", port=0)
    host, port = transport.start()
    with ServingClient(host, port) as client:
        for q in queries(8):
            client.infer("wire-model", q)
        yield server, client
    transport.stop()
    server.stop()


class TestTransportObservability:
    def test_traced_socket_request_spans_cover_e2e_latency(self, traced_stack):
        _, client = traced_stack
        traces = client.traces()
        assert traces
        trace = traces[-1]
        names = [span["name"] for span in trace["spans"]]
        top_level = [s for s in trace["spans"] if not s["name"].startswith("stage:")]
        assert len(top_level) >= 6, names
        assert "transport" in names, names
        tiled_ms = sum(s["duration_ms"] for s in top_level)
        # The acceptance bound: summed self-times within 10% of the
        # measured end-to-end latency (here exact by construction).
        assert tiled_ms == pytest.approx(trace["duration_ms"], rel=0.10)

    def test_chrome_trace_export_is_loadable_json(self, traced_stack):
        _, client = traced_stack
        document = json.loads(json.dumps(chrome_trace(client.traces())))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert complete and metadata
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["name"] and "pid" in event and "tid" in event

    def test_metrics_op_renders_lintable_prometheus_text(self, traced_stack):
        _, client = traced_stack
        text = client.metrics_text()
        samples = parse_prometheus_text(text)
        by_name = {sample.name for sample in samples}
        assert "hdc_serving_requests_total" in by_name
        assert "hdc_serving_model_request_latency_seconds_bucket" in by_name
        assert "hdc_serving_stage_seconds_total" in by_name
        model_count = [
            s
            for s in samples
            if s.name == "hdc_serving_model_request_latency_seconds_count"
            and s.labels.get("model") == "wire-model"
        ]
        assert model_count and model_count[0].value >= 8

    def test_metrics_namespace_override(self, traced_stack):
        _, client = traced_stack
        text = client.metrics_text(namespace="custom_ns")
        assert "custom_ns_requests_total" in text
        assert "hdc_serving_requests_total" not in text


# ---------------------------------------------------------------------------
# Prometheus lint
# ---------------------------------------------------------------------------


class TestPrometheusLint:
    def test_render_then_parse_round_trip_on_live_stats(self):
        with InferenceServer(max_batch_size=4, max_wait_seconds=0.001) as server:
            server.register(make_servable(name="lint-model"), warm=False)
            for q in queries(4):
                server.infer("lint-model", q)
            server.drain()
            stats = server.stats().to_dict()
        samples = parse_prometheus_text(render_prometheus(stats))
        assert samples

    def test_sample_without_type_declaration_rejected(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus_text("orphan_metric 1\n")

    def test_non_cumulative_histogram_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="0.2"} 3\n'  # decreasing — not cumulative
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 0.4\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_prometheus_text(text)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 0.4\n"
            "h_count 7\n"  # != +Inf bucket
        )
        with pytest.raises(ValueError, match="Inf"):
            parse_prometheus_text(text)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not { prometheus\n")


# ---------------------------------------------------------------------------
# scrape_stats: histogram-aware dotted threshold paths
# ---------------------------------------------------------------------------


class TestScrapeStatsHistogramPaths:
    @pytest.fixture(scope="class")
    def record(self):
        rng = np.random.default_rng(31)
        hist = LatencyHistogram()
        hist.record_many(rng.lognormal(-4.0, 0.7, 4000))
        return hist, {
            "model_stats": {
                "isolet": {
                    "latency_p99_ms": hist.percentile(99) * 1e3,
                    "histograms": {"latency": hist.to_dict()},
                }
            }
        }

    def test_quantile_tokens_resolve_from_bucket_data(self, record):
        hist, doc = record
        scrape_stats = _load_tool("scrape_stats")
        resolve = scrape_stats._resolve
        base = "model_stats.isolet.histograms.latency"
        assert resolve(doc, f"{base}.p99") == pytest.approx(hist.percentile(99))
        assert resolve(doc, f"{base}.p99_ms") == pytest.approx(hist.percentile(99) * 1e3)
        assert resolve(doc, f"{base}.p99_9") == pytest.approx(hist.percentile(99.9))
        assert resolve(doc, f"{base}.p50") == pytest.approx(hist.percentile(50))
        assert resolve(doc, f"{base}.count") == 4000
        assert resolve(doc, f"{base}.mean_ms") == pytest.approx(hist.mean * 1e3)
        # Plain (pre-derived) keys keep resolving directly.
        assert resolve(doc, "model_stats.isolet.latency_p99_ms") == pytest.approx(
            hist.percentile(99) * 1e3
        )

    def test_unknown_tokens_and_deep_paths_stay_missing(self, record):
        _, doc = record
        resolve = _load_tool("scrape_stats")._resolve
        assert resolve(doc, "model_stats.isolet.histograms.latency.nope") is None
        assert resolve(doc, "model_stats.isolet.histograms.latency.p99.deeper") is None
        assert resolve(doc, "model_stats.isolet.histograms.latency.p999") is None

    def test_fail_on_expression_gates_on_histogram_quantile(self, record, tmp_path):
        hist, doc = record
        scrape_stats = _load_tool("scrape_stats")
        path = tmp_path / "stats.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        p99_ms = hist.percentile(99) * 1e3
        tight = f"model_stats.isolet.histograms.latency.p99_ms>{p99_ms / 2:.6f}"
        loose = f"model_stats.isolet.histograms.latency.p99_ms>{p99_ms * 2:.6f}"
        assert scrape_stats.main(["--check", str(path), "--fail-on", tight]) == 1
        assert scrape_stats.main(["--check", str(path), "--fail-on", loose]) == 0
