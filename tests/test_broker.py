"""Tests for the transport-agnostic request core (repro.serving.broker),
the per-deployment SLO / latency-split metrics, and the versioned
hot-swap / online re-training path (including the submit-vs-swap race
regressions)."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps import HDClassificationInference
from repro.apps.common import bipolar_random
from repro.backends import compile as hdc_compile
from repro.datasets import IsoletConfig, make_isolet_like
from repro.serving import (
    BatcherClosed,
    InferenceServer,
    ModelRegistry,
    NotUpdatableError,
    RequestBroker,
    Servable,
    ServingMetrics,
)
from repro.serving.scheduler import WorkerPool

DIM = 128
CLASSES = 5


def make_servable(seed: int = 2, name: str = "broker-model") -> Servable:
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            distances = H.hamming_distance(H.sign(encoding), H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


def queries(n: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 2, (n, DIM)) * 2 - 1).astype(np.float32)


class TestRequestBrokerStandalone:
    """The broker is usable without the InferenceServer facade."""

    def test_submit_batch_dispatch_settle(self):
        servable = make_servable()
        registry = ModelRegistry()
        deployment = registry.register(servable, warm_batch_sizes=())
        broker = RequestBroker(
            registry, WorkerPool(("cpu",)), max_batch_size=8, max_wait_seconds=0.002
        )
        broker.add_model(deployment)
        assert not broker.running
        broker.start()
        try:
            assert broker.running
            futures = [broker.submit(servable.name, q) for q in queries(20)]
            broker.drain()
            labels = [int(np.asarray(f.result(timeout=5.0))) for f in futures]
            assert all(0 <= label < CLASSES for label in labels)
            stats = broker.stats()
            assert stats.requests == 20
            assert broker.model_names() == [servable.name]
        finally:
            broker.stop()
        assert not broker.running

    def test_server_is_thin_adapter_over_broker(self):
        """The facade and its broker must observe the same state."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        servable = make_servable(name="adapter-model")
        server.register(servable)
        assert server.metrics is server.broker.metrics
        assert server.broker.registry is server.registry
        assert server.broker.pool is server.pool
        with server:
            server.infer(servable.name, queries(1)[0])
            server.drain()
        assert server.stats().requests == server.broker.stats().requests == 1


class TestLatencySplitAndSLO:
    def test_queue_wait_execute_split_recorded(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        servable = make_servable(name="split-model")
        server.register(servable)
        with server:
            for q in queries(24):
                server.submit(servable.name, q)
            server.drain()
            stats = server.stats()
        model = stats.model_stats[servable.name]
        assert model["requests"] == 24
        assert model["mean_execute_ms"] > 0.0
        assert model["queue_wait_p95_ms"] >= model["queue_wait_p50_ms"] >= 0.0
        assert model["execute_p95_ms"] >= model["execute_p50_ms"] > 0.0
        # The split components cannot exceed the end-to-end latency.
        assert model["mean_queue_wait_ms"] + model["mean_execute_ms"] <= (
            stats.mean_latency_ms * 1.5 + 1.0
        )

    def test_slo_violations_counted_per_model(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        strict = make_servable(seed=4, name="strict-slo")
        relaxed = make_servable(seed=5, name="relaxed-slo")
        server.register(strict, slo_ms=1e-9)       # everything violates
        server.register(relaxed, slo_ms=60_000.0)  # nothing violates
        with server:
            for q in queries(10):
                server.submit(strict.name, q)
                server.submit(relaxed.name, q)
            server.drain()
            stats = server.stats()
        assert stats.model_stats[strict.name]["slo_violations"] == 10
        assert stats.model_stats[strict.name]["slo_ms"] == pytest.approx(1e-9)
        assert stats.model_stats[relaxed.name]["slo_violations"] == 0
        assert stats.slo_violations == 10

    def test_no_slo_means_no_violations(self):
        metrics = ServingMetrics()
        metrics.record_request(10.0, model="m", queue_wait_seconds=9.0, execute_seconds=1.0)
        stats = metrics.snapshot()
        assert stats.model_stats["m"]["slo_ms"] is None
        assert stats.model_stats["m"]["slo_violations"] == 0

    def test_stats_to_dict_is_json_serializable(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=4)
        servable = make_servable(name="json-model")
        server.register(servable, slo_ms=5_000.0)
        with server:
            server.infer(servable.name, queries(1)[0])
            server.drain()
            payload = json.dumps(server.stats().to_dict())
        restored = json.loads(payload)
        assert restored["requests"] == 1
        assert all(isinstance(k, str) for k in restored["batch_size_histogram"])


class TestMetricsReset:
    def test_reset_zeroes_interval_but_keeps_slo(self):
        metrics = ServingMetrics()
        metrics.set_slo("m", 0.5)
        metrics.record_request(1.0, model="m", queue_wait_seconds=0.9, execute_seconds=0.1)
        metrics.record_batch(4)
        metrics.record_failure()
        metrics.record_expired(2)
        assert metrics.snapshot().model_stats["m"]["slo_violations"] == 1

        metrics.reset()
        stats = metrics.snapshot()
        assert stats.requests == 0 and stats.batches == 0
        assert stats.failures == 0 and stats.deadline_exceeded == 0
        assert stats.latency_p99_ms == 0.0 and stats.mean_latency_ms == 0.0
        assert stats.model_stats["m"]["requests"] == 0
        assert stats.model_stats["m"]["slo_violations"] == 0
        assert stats.model_stats["m"]["slo_ms"] == pytest.approx(0.5)

        # The next interval counts from zero.
        metrics.record_request(0.1, model="m", queue_wait_seconds=0.05, execute_seconds=0.05)
        assert metrics.snapshot().requests == 1

    def test_per_interval_reporting_on_live_server(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        servable = make_servable(name="interval-model")
        server.register(servable)
        with server:
            for q in queries(12):
                server.submit(servable.name, q)
            server.drain()
            first = server.stats()
            server.reset_stats()
            for q in queries(5, seed=9):
                server.submit(servable.name, q)
            server.drain()
            second = server.stats()
        assert first.requests == 12
        assert second.requests == 5  # only the new interval
        assert second.uptime_seconds < first.uptime_seconds

    def test_snapshot_consistent_under_concurrent_writers(self):
        """Hammer the collectors from several threads while snapshotting;
        every snapshot must be internally consistent (single lock)."""
        metrics = ServingMetrics(latency_window=64)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record_request(0.001, model="m", queue_wait_seconds=0.0005,
                                       execute_seconds=0.0005)
                metrics.record_batch(2)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                stats = metrics.snapshot()
                # requests and the per-model collector advance under one
                # lock, so a torn read could never show model > total.
                assert stats.model_stats.get("m", {}).get("requests", 0) <= stats.requests
        finally:
            stop.set()
            for thread in threads:
                thread.join()


def make_broker(servable, max_batch_size: int = 8, max_wait_seconds: float = 0.001):
    registry = ModelRegistry()
    deployment = registry.register(servable, warm_batch_sizes=())
    broker = RequestBroker(
        registry, WorkerPool(("cpu",)), max_batch_size=max_batch_size,
        max_wait_seconds=max_wait_seconds,
    )
    broker.add_model(deployment)
    return registry, broker


class TestHotSwapRace:
    """The ROADMAP bug: submit used to read the batcher map unlocked, so a
    concurrent add_model/swap could hand it a just-closed batcher."""

    def test_submit_survives_swap_closing_the_fetched_batcher(self):
        """Regression with injected close timing: the batcher submit
        fetched is hot-swapped (closed + replaced) before the enqueue
        lands.  The pre-fix unlocked read propagated the closed-batcher
        error to the caller — a dropped request; the fixed path retries
        against the replacement and the request resolves normally."""
        servable = make_servable(name="race-model")
        registry, broker = make_broker(servable)
        broker.start()
        try:
            victim = broker._batchers[servable.name]
            real_submit = victim.submit
            fired = []

            def closing_submit(sample, **kwargs):
                if not fired:
                    fired.append(True)
                    # The concurrent hot-swap, timed to land exactly
                    # between submit's batcher fetch and its enqueue.
                    broker.add_model(registry.register(servable, warm_batch_sizes=()))
                return real_submit(sample, **kwargs)

            victim.submit = closing_submit
            future = broker.submit(servable.name, queries(1)[0])
            broker.drain()
            assert fired, "the injected hot-swap never ran"
            assert victim.closed  # the fetched batcher really was closed
            assert 0 <= int(np.asarray(future.result(timeout=5.0))) < CLASSES
            assert broker.stats().failures == 0
        finally:
            broker.stop()

    def test_stopped_swap_closes_old_batcher_before_draining_it(self):
        """Regression (injected timing, stopped broker): the old batcher
        must close BEFORE its queued requests drain into the replacement.
        The reverse order leaves a window — drain, racing enqueue
        succeeds, close — where the racing request is orphaned in a
        batcher nothing will ever feed or adopt again (future never
        resolves, drain counter leaks)."""
        servable = make_servable(name="stopped-swap-model")
        registry, broker = make_broker(servable)
        old = broker._batchers[servable.name]
        real_drain = old.drain_requests
        window = {}

        def racing_drain():
            drained = real_drain()
            # The concurrent submit landing inside the swap window: with
            # close-first ordering it is rejected (and the broker-level
            # submit would retry into the replacement); with drain-first
            # ordering it enqueues into the drained old batcher — orphaned.
            try:
                old.submit(queries(1)[0])
                window["outcome"] = "orphaned"
            except BatcherClosed:
                window["outcome"] = "rejected"
            return drained

        old.drain_requests = racing_drain
        broker.add_model(registry.register(servable, warm_batch_sizes=()))
        assert window["outcome"] == "rejected"
        broker.drain(timeout=0.1)  # and nothing leaked into the counter

    def test_submit_hammered_by_concurrent_hot_swaps(self):
        """Stress: submitters race add_model/swap of the same name; every
        request must resolve (no drops, no errors, no orphans)."""
        servable = make_servable(name="hammer-model")
        registry, broker = make_broker(servable)
        broker.start()
        stop = threading.Event()
        futures, errors = [], []
        futures_lock = threading.Lock()
        samples = queries(16)

        def submitter(seed: int) -> None:
            i = seed
            while not stop.is_set():
                try:
                    future = broker.submit(servable.name, samples[i % len(samples)])
                    with futures_lock:
                        futures.append(future)
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)
                i += 1
                time.sleep(0.0002)

        threads = [threading.Thread(target=submitter, args=(t,)) for t in range(4)]
        try:
            for thread in threads:
                thread.start()
            deployment = registry.get(servable.name)
            for round_index in range(12):
                if round_index % 2 == 0:
                    # re-register under the live name (the original swap idiom)
                    deployment = registry.register(servable, warm_batch_sizes=())
                    broker.add_model(deployment)
                else:
                    replacement = deployment.with_servable(servable)
                    registry.swap(servable.name, replacement)
                    broker.swap(replacement)
                    deployment = replacement
                time.sleep(0.003)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            broker.drain()
            stats = broker.stats()
            broker.stop()
        assert not errors, errors
        assert futures, "stress loop produced no requests"
        labels = [int(np.asarray(f.result(timeout=5.0))) for f in futures]
        assert all(0 <= label < CLASSES for label in labels)
        assert stats.failures == 0
        assert stats.requests == len(futures)  # every request accounted for
        assert registry.version(servable.name) == 13  # 1 + 12 swaps, monotonic


class TestDrainAccounting:
    """The second ROADMAP-adjacent bug: submit used to register with the
    drain counter only after the enqueue, so a concurrent drain() could
    return while a just-submitted request was still in flight."""

    def test_outstanding_registered_before_enqueue(self):
        servable = make_servable(name="drain-order-model")
        _, broker = make_broker(servable)
        batcher = broker._batchers[servable.name]
        real_submit = batcher.submit
        observed = []

        def checking_submit(sample, **kwargs):
            with broker._drain_cond:
                observed.append(broker._outstanding)
            return real_submit(sample, **kwargs)

        batcher.submit = checking_submit
        broker.submit(servable.name, queries(1)[0])  # stopped broker: queues
        assert observed == [1]  # already registered when the enqueue ran

    def test_rollback_on_validation_error(self):
        servable = make_servable(name="drain-validate-model")
        _, broker = make_broker(servable)
        with pytest.raises(ValueError):
            broker.submit(servable.name, np.zeros(DIM + 1, dtype=np.float32))
        broker.drain(timeout=0.1)  # nothing outstanding leaked

    def test_rollback_on_enqueue_error(self):
        servable = make_servable(name="drain-enqueue-model")
        _, broker = make_broker(servable)
        batcher = broker._batchers[servable.name]

        def failing_submit(sample, **kwargs):
            raise RuntimeError("injected enqueue failure")

        batcher.submit = failing_submit
        with pytest.raises(RuntimeError):
            broker.submit(servable.name, queries(1)[0])
        broker.drain(timeout=0.1)  # nothing outstanding leaked

    def test_closed_without_replacement_still_rejects(self):
        """Retry-on-closed must not spin when the batcher closed because
        the broker stopped (closed but never replaced)."""
        servable = make_servable(name="drain-stopped-model")
        _, broker = make_broker(servable)
        broker.start()
        broker.stop()
        with pytest.raises(BatcherClosed):
            broker.submit(servable.name, queries(1)[0])
        broker.drain(timeout=0.1)


class TestVersionedHotSwap:
    def test_registry_versions_bump_on_register_and_swap(self):
        servable = make_servable(name="versioned-model")
        registry = ModelRegistry()
        deployment = registry.register(servable, warm_batch_sizes=())
        assert deployment.version == 1
        assert registry.version(servable.name) == 1
        replacement = deployment.with_servable(servable)
        assert registry.swap(servable.name, replacement) == 2
        assert registry.get(servable.name) is replacement
        assert registry.versions() == {servable.name: 2}
        from repro.serving import Deployment

        unregistered = Deployment("never-registered", servable, registry.cache)
        with pytest.raises(KeyError):
            registry.swap("never-registered", unregistered)
        with pytest.raises(ValueError):  # name mismatch guard
            registry.swap("some-other-name", replacement)
        # Compare-and-swap guard: a replacement derived from a deployment
        # the registry no longer holds must be refused, not installed.
        stale_base = deployment  # already replaced above
        with pytest.raises(RuntimeError):
            registry.swap(
                servable.name, stale_base.with_servable(servable), expected=stale_base
            )
        current = registry.get(servable.name)
        assert registry.swap(
            servable.name, current.with_servable(servable), expected=current
        ) == 3
        # unregister keeps the version memory: re-register continues it
        registry.unregister(servable.name)
        assert registry.register(servable, warm_batch_sizes=()).version == 4

    def test_swap_versions_monotonic_under_concurrent_swappers(self):
        servable = make_servable(name="mono-model")
        registry = ModelRegistry()
        deployment = registry.register(servable, warm_batch_sizes=())
        per_thread = [[] for _ in range(4)]

        def swapper(index: int) -> None:
            for _ in range(25):
                per_thread[index].append(
                    registry.swap(servable.name, deployment.with_servable(servable))
                )

        threads = [threading.Thread(target=swapper, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for versions in per_thread:
            assert versions == sorted(versions)  # each swapper sees increasing
        combined = sorted(v for versions in per_thread for v in versions)
        assert combined == list(range(2, 102))  # unique, gapless, monotonic
        assert registry.version(servable.name) == 101

    def test_update_evicts_stale_compiled_programs(self):
        """Each update re-derives a content-hashed signature; the replaced
        version's compiled programs must be evicted, or a long-running
        streaming-retraining service leaks one bucket ladder per round."""
        from repro.apps.classification import classification_servable

        rng = np.random.default_rng(17)
        servable = classification_servable(
            "evict-model",
            dimension=64,
            similarity="hamming",
            rp_matrix=bipolar_random(64, 8, seed=2),
            classes=rng.standard_normal((3, 64)).astype(np.float32),
        )
        server = InferenceServer(workers=("cpu",), max_batch_size=4, max_wait_seconds=0.001)
        server.register(servable)
        samples = rng.standard_normal((6, 8)).astype(np.float32)
        with server:
            sizes = []
            for round_index in range(3):
                server.update("evict-model", samples, rng.integers(0, 3, 6))
                sizes.append(len(server.registry.cache))
        # Bounded: exactly one warmed ladder alive after every round.
        assert sizes[0] == sizes[1] == sizes[2]
        assert server.registry.cache.stats.evictions > 0

    def test_update_rejects_malformed_labels(self):
        """Negative / non-integer / out-of-range labels must be refused
        before they can silently corrupt the swapped-in class memories
        (numpy negative indexing would bundle into the *last* class)."""
        from repro.apps.classification import classification_servable

        rng = np.random.default_rng(13)
        servable = classification_servable(
            "label-guard",
            dimension=64,
            similarity="hamming",
            rp_matrix=bipolar_random(64, 8, seed=1),
            classes=rng.standard_normal((3, 64)).astype(np.float32),
        )
        samples = rng.standard_normal((4, 8)).astype(np.float32)
        good = servable.updated(samples, np.array([0, 1, 2, 0]))
        assert good.constants["class_hvs"].shape == (3, 64)
        with pytest.raises(ValueError):  # negative label
            servable.updated(samples, np.array([0, 1, -1, 0]))
        with pytest.raises(ValueError):  # non-integer labels
            servable.updated(samples, np.array([0.0, 1.0, 2.0, 0.0]))
        with pytest.raises(ValueError):  # out of range for 3 classes
            servable.updated(samples, np.array([0, 1, 2, 3]))
        with pytest.raises(ValueError):  # label/sample count mismatch
            servable.updated(samples, np.array([0, 1]))
        with pytest.raises(ValueError):  # wrong sample shape
            servable.updated(rng.standard_normal((4, 9)).astype(np.float32), np.zeros(4, np.int64))

    def test_update_rule_cannot_mutate_bound_constants(self):
        """update_batch receives read-only views: an in-place rule fails
        loudly instead of corrupting the live deployment's state."""
        servable = make_servable(name="inplace-model")
        original = np.array(servable.constants["class_hvs"], copy=True)

        def in_place_rule(constants, samples, labels):
            constants["class_hvs"] += 1.0  # mutates the bound state
            return constants

        evil = Servable(
            name="inplace-model",
            build_program=servable.build_program,
            constants=servable.constants,
            sample_shape=(DIM,),
            update_batch=in_place_rule,
        )
        with pytest.raises(ValueError):
            evil.updated(queries(2), np.zeros(2, dtype=np.int64))
        assert np.array_equal(servable.constants["class_hvs"], original)

    def test_update_on_non_updatable_servable_raises_typed_error(self):
        servable = make_servable(name="frozen-model")  # no update_batch rule
        assert not servable.updatable
        _, broker = make_broker(servable)
        with pytest.raises(NotUpdatableError):
            broker.update(servable.name, queries(4), np.zeros(4, dtype=np.int64))
        with pytest.raises(NotUpdatableError):
            servable.updated(queries(4), np.zeros(4, dtype=np.int64))


class TestServeWhileRetraining:
    """The tentpole end to end: sustained load across >= 3 online
    re-training hot-swaps — zero dropped/errored requests, and post-swap
    predictions bit-identical to an offline retrain of the same data."""

    N_ROUNDS = 3

    def test_zero_drops_and_bit_identity_across_swaps(self):
        dataset = make_isolet_like(
            IsoletConfig(n_features=32, n_classes=6, n_train=120, n_test=24, seed=7)
        )
        app = HDClassificationInference(dimension=128, similarity="hamming")
        servable = app.as_servable(dataset=dataset)
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.001)
        server.register(servable)
        rounds = [
            (dataset.train_features[i :: self.N_ROUNDS], dataset.train_labels[i :: self.N_ROUNDS])
            for i in range(self.N_ROUNDS)
        ]
        stop = threading.Event()
        futures, errors = [], []
        futures_lock = threading.Lock()

        def loader(seed: int) -> None:
            i = seed
            while not stop.is_set():
                try:
                    future = server.submit(
                        servable.name, dataset.test_features[i % dataset.test_features.shape[0]]
                    )
                    with futures_lock:
                        futures.append(future)
                except Exception as exc:  # pragma: no cover - would be the bug
                    errors.append(exc)
                i += 1
                time.sleep(0.0005)

        threads = [threading.Thread(target=loader, args=(t,)) for t in range(2)]
        with server:
            for thread in threads:
                thread.start()
            versions = []
            for samples, labels in rounds:
                versions.append(server.update(servable.name, samples, labels))
                time.sleep(0.01)  # keep serving between swaps
            stop.set()
            for thread in threads:
                thread.join()
            server.drain()
            post_swap = server.infer_many(servable.name, list(dataset.test_features))
            server.drain()
            stats = server.stats()

        # Zero dropped/errored requests under sustained load across swaps.
        assert not errors, errors
        assert futures, "load threads produced no requests"
        for future in futures:
            assert 0 <= int(np.asarray(future.result(timeout=5.0))) < dataset.n_classes
        assert stats.failures == 0 and stats.deadline_exceeded == 0

        # Swap accounting: monotonic versions, per-version request ledger.
        assert versions == [2, 3, 4]  # register stamped 1; three updates
        assert stats.swaps == self.N_ROUNDS
        assert server.model_versions() == {servable.name: 4}
        model = stats.model_stats[servable.name]
        assert model["version"] == 4
        assert model["swaps"] == self.N_ROUNDS
        assert sum(model["requests_by_version"].values()) == model["requests"]
        assert model["requests_by_version"]["4"] >= len(dataset.test_features)

        # Bit identity: the served post-swap state and predictions equal an
        # offline retrain applying the same rule to the same mini-batches.
        offline = servable
        for samples, labels in rounds:
            offline = offline.updated(samples, labels)
        live = server.registry.get(servable.name).servable
        assert offline.signature == live.signature
        assert np.array_equal(offline.constants["class_hvs"], live.constants["class_hvs"])
        handle = hdc_compile(
            offline.build_program(dataset.test_features.shape[0]), target="cpu"
        ).bind(**offline.constants)
        expected = [
            int(v) for v in np.asarray(handle.run(queries=dataset.test_features).output)
        ]
        assert [int(np.asarray(r)) for r in post_swap] == expected


class TestFutureLifecycle:
    def test_submitted_futures_are_not_cancellable(self):
        """Broker futures are marked RUNNING at submit: a front end that
        gets torn down (e.g. asyncio.wrap_future during transport stop)
        must not be able to cancel them out from under the worker, which
        would make set_result raise and kill the worker thread."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        servable = make_servable(name="nocancel-model")
        server.register(servable)
        future = server.submit(servable.name, queries(1)[0])  # server stopped: stays queued
        assert future.cancel() is False
        with server:
            server.drain()
        assert int(np.asarray(future.result(timeout=5.0))) >= 0
