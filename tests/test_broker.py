"""Tests for the transport-agnostic request core (repro.serving.broker)
and the per-deployment SLO / latency-split metrics."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps.common import bipolar_random
from repro.serving import (
    InferenceServer,
    ModelRegistry,
    RequestBroker,
    Servable,
    ServingMetrics,
)
from repro.serving.scheduler import WorkerPool

DIM = 128
CLASSES = 5


def make_servable(seed: int = 2, name: str = "broker-model") -> Servable:
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            distances = H.hamming_distance(H.sign(encoding), H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


def queries(n: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 2, (n, DIM)) * 2 - 1).astype(np.float32)


class TestRequestBrokerStandalone:
    """The broker is usable without the InferenceServer facade."""

    def test_submit_batch_dispatch_settle(self):
        servable = make_servable()
        registry = ModelRegistry()
        deployment = registry.register(servable, warm_batch_sizes=())
        broker = RequestBroker(
            registry, WorkerPool(("cpu",)), max_batch_size=8, max_wait_seconds=0.002
        )
        broker.add_model(deployment)
        assert not broker.running
        broker.start()
        try:
            assert broker.running
            futures = [broker.submit(servable.name, q) for q in queries(20)]
            broker.drain()
            labels = [int(np.asarray(f.result(timeout=5.0))) for f in futures]
            assert all(0 <= label < CLASSES for label in labels)
            stats = broker.stats()
            assert stats.requests == 20
            assert broker.model_names() == [servable.name]
        finally:
            broker.stop()
        assert not broker.running

    def test_server_is_thin_adapter_over_broker(self):
        """The facade and its broker must observe the same state."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        servable = make_servable(name="adapter-model")
        server.register(servable)
        assert server.metrics is server.broker.metrics
        assert server.broker.registry is server.registry
        assert server.broker.pool is server.pool
        with server:
            server.infer(servable.name, queries(1)[0])
            server.drain()
        assert server.stats().requests == server.broker.stats().requests == 1


class TestLatencySplitAndSLO:
    def test_queue_wait_execute_split_recorded(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        servable = make_servable(name="split-model")
        server.register(servable)
        with server:
            for q in queries(24):
                server.submit(servable.name, q)
            server.drain()
            stats = server.stats()
        model = stats.model_stats[servable.name]
        assert model["requests"] == 24
        assert model["mean_execute_ms"] > 0.0
        assert model["queue_wait_p95_ms"] >= model["queue_wait_p50_ms"] >= 0.0
        assert model["execute_p95_ms"] >= model["execute_p50_ms"] > 0.0
        # The split components cannot exceed the end-to-end latency.
        assert model["mean_queue_wait_ms"] + model["mean_execute_ms"] <= (
            stats.mean_latency_ms * 1.5 + 1.0
        )

    def test_slo_violations_counted_per_model(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        strict = make_servable(seed=4, name="strict-slo")
        relaxed = make_servable(seed=5, name="relaxed-slo")
        server.register(strict, slo_ms=1e-9)       # everything violates
        server.register(relaxed, slo_ms=60_000.0)  # nothing violates
        with server:
            for q in queries(10):
                server.submit(strict.name, q)
                server.submit(relaxed.name, q)
            server.drain()
            stats = server.stats()
        assert stats.model_stats[strict.name]["slo_violations"] == 10
        assert stats.model_stats[strict.name]["slo_ms"] == pytest.approx(1e-9)
        assert stats.model_stats[relaxed.name]["slo_violations"] == 0
        assert stats.slo_violations == 10

    def test_no_slo_means_no_violations(self):
        metrics = ServingMetrics()
        metrics.record_request(10.0, model="m", queue_wait_seconds=9.0, execute_seconds=1.0)
        stats = metrics.snapshot()
        assert stats.model_stats["m"]["slo_ms"] is None
        assert stats.model_stats["m"]["slo_violations"] == 0

    def test_stats_to_dict_is_json_serializable(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=4)
        servable = make_servable(name="json-model")
        server.register(servable, slo_ms=5_000.0)
        with server:
            server.infer(servable.name, queries(1)[0])
            server.drain()
            payload = json.dumps(server.stats().to_dict())
        restored = json.loads(payload)
        assert restored["requests"] == 1
        assert all(isinstance(k, str) for k in restored["batch_size_histogram"])


class TestMetricsReset:
    def test_reset_zeroes_interval_but_keeps_slo(self):
        metrics = ServingMetrics()
        metrics.set_slo("m", 0.5)
        metrics.record_request(1.0, model="m", queue_wait_seconds=0.9, execute_seconds=0.1)
        metrics.record_batch(4)
        metrics.record_failure()
        metrics.record_expired(2)
        assert metrics.snapshot().model_stats["m"]["slo_violations"] == 1

        metrics.reset()
        stats = metrics.snapshot()
        assert stats.requests == 0 and stats.batches == 0
        assert stats.failures == 0 and stats.deadline_exceeded == 0
        assert stats.latency_p99_ms == 0.0 and stats.mean_latency_ms == 0.0
        assert stats.model_stats["m"]["requests"] == 0
        assert stats.model_stats["m"]["slo_violations"] == 0
        assert stats.model_stats["m"]["slo_ms"] == pytest.approx(0.5)

        # The next interval counts from zero.
        metrics.record_request(0.1, model="m", queue_wait_seconds=0.05, execute_seconds=0.05)
        assert metrics.snapshot().requests == 1

    def test_per_interval_reporting_on_live_server(self):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.002)
        servable = make_servable(name="interval-model")
        server.register(servable)
        with server:
            for q in queries(12):
                server.submit(servable.name, q)
            server.drain()
            first = server.stats()
            server.reset_stats()
            for q in queries(5, seed=9):
                server.submit(servable.name, q)
            server.drain()
            second = server.stats()
        assert first.requests == 12
        assert second.requests == 5  # only the new interval
        assert second.uptime_seconds < first.uptime_seconds

    def test_snapshot_consistent_under_concurrent_writers(self):
        """Hammer the collectors from several threads while snapshotting;
        every snapshot must be internally consistent (single lock)."""
        metrics = ServingMetrics(latency_window=64)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record_request(0.001, model="m", queue_wait_seconds=0.0005,
                                       execute_seconds=0.0005)
                metrics.record_batch(2)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                stats = metrics.snapshot()
                # requests and the per-model collector advance under one
                # lock, so a torn read could never show model > total.
                assert stats.model_stats.get("m", {}).get("requests", 0) <= stats.requests
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestFutureLifecycle:
    def test_submitted_futures_are_not_cancellable(self):
        """Broker futures are marked RUNNING at submit: a front end that
        gets torn down (e.g. asyncio.wrap_future during transport stop)
        must not be able to cancel them out from under the worker, which
        would make set_result raise and kill the worker thread."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8)
        servable = make_servable(name="nocancel-model")
        server.register(servable)
        future = server.submit(servable.name, queries(1)[0])  # server stopped: stays queued
        assert future.cancel() is False
        with server:
            server.drain()
        assert int(np.asarray(future.result(timeout=5.0))) >= 0
