"""The batch-native execution plane: bit-identity and the fallback gate.

Covers the tentpole contract end to end:

* for **all five application adapters**, the batched route (declared
  ``batch_impl`` or auto-vectorized traced implementation) produces
  outputs **bit-identical** to the per-row reference path, across dtypes
  and edge shapes (empty batch, single row, reads shorter than one
  k-mer);
* a deliberately **non-bit-identical** ``batch_impl`` is rejected by the
  boundary-row gate, the per-row result is returned instead, and the
  fallback is recorded in ``ExecutionReport.notes``;
* the per-deployment vectorized-vs-fallback counters flow through the
  serving metrics into ``ServerStats.to_dict()``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import hdcpp as H
from repro.apps.classification import HDClassificationInference
from repro.apps.clustering import HDClustering
from repro.apps.common import bipolar_random
from repro.apps.hashtable import HDHashtable
from repro.apps.hyperoms import HyperOMS, make_level_hypervectors
from repro.apps.relhd import RelHD
from repro.backends import compile as hdc_compile
from repro.backends.cpu import CPUBackend
from repro.datasets import make_isolet_like
from repro.datasets.genomics import GenomicsConfig, base_indices, make_genomics_dataset
from repro.evaluation import EvaluationScale
from repro.serving import InferenceServer


def run_both(program, **inputs):
    """Execute one program on the per-row and the batched CPU back end.

    Returns ``(reference_result, batched_result)``; the batched back end
    uses the same reference kernels semantics gated on bit identity, so
    outputs must agree exactly whenever the gate passed (and also when it
    fell back — the per-row loop *is* the reference).
    """
    reference = CPUBackend(batched=False).compile(program).run(**inputs)
    batched = CPUBackend(batched=True).compile(program).run(**inputs)
    return reference, batched


def assert_vectorized(result, minimum: int = 1):
    notes = result.report.notes
    assert notes.get("stage_fallbacks", 0) == 0, notes.get("stage_fallback_reasons")
    assert notes.get("stage_vectorized", 0) >= minimum


# ---------------------------------------------------------------------------
# All five apps: batched route bit-identical to the per-row reference
# ---------------------------------------------------------------------------


class TestFiveAppsBitIdentical:
    @pytest.fixture(scope="class")
    def isolet(self):
        return make_isolet_like(EvaluationScale.smoke().isolet())

    def test_classification_inference(self, isolet):
        app = HDClassificationInference(dimension=256, similarity="hamming")
        rp, classes = app.train_offline(isolet)
        program = app.build_program(isolet.n_features, isolet.n_classes, 16)
        queries = isolet.test_features[:16]
        reference, batched = run_both(
            program, test_queries=queries, classes=classes, rp_matrix=rp
        )
        assert np.array_equal(np.asarray(reference.output), np.asarray(batched.output))
        assert_vectorized(batched)

    def test_clustering_encode_and_assign(self, isolet):
        app = HDClustering(dimension=128, n_clusters=4)
        rng = np.random.default_rng(3)
        samples = isolet.train_features[:12]
        encode_prog = app.build_encode_program(samples.shape[0], samples.shape[1])
        rp = bipolar_random(app.dimension, samples.shape[1], seed=app.seed)
        ref_enc, bat_enc = run_both(encode_prog, samples=samples, rp_matrix=rp)
        assert np.array_equal(np.asarray(ref_enc.output), np.asarray(bat_enc.output))
        assert_vectorized(bat_enc)

        clusters = np.sign(rng.standard_normal((4, app.dimension))).astype(np.float32)
        assign_prog = app.build_assign_program(samples.shape[0])
        ref_assign, bat_assign = run_both(
            assign_prog, encoded_samples=np.asarray(ref_enc.output), clusters=clusters
        )
        assert np.array_equal(np.asarray(ref_assign.output), np.asarray(bat_assign.output))
        assert_vectorized(bat_assign)

    def test_relhd_servable_search(self):
        rng = np.random.default_rng(7)
        app = RelHD(dimension=128)
        classes = np.sign(rng.standard_normal((5, 128))).astype(np.float32)
        servable = app.as_servable(classes)
        program = servable.build_program(8)
        encodings = np.sign(rng.standard_normal((8, 128))).astype(np.float32)
        reference, batched = run_both(program, node_encodings=encodings, class_hvs=classes)
        assert np.array_equal(np.asarray(reference.output), np.asarray(batched.output))
        assert_vectorized(batched)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_hyperoms_program(self, dtype):
        rng = np.random.default_rng(11)
        app = HyperOMS(dimension=128, n_levels=8)
        queries = (rng.random((6, 24)) * (rng.random((6, 24)) > 0.4)).astype(dtype)
        library = (rng.random((9, 24)) * (rng.random((9, 24)) > 0.4)).astype(dtype)
        program = app.build_program(queries.shape[0], library.shape[0], queries.shape[1])
        reference, batched = run_both(
            program, query_spectra=queries, library_spectra=library
        )
        assert np.array_equal(np.asarray(reference.output), np.asarray(batched.output))
        assert_vectorized(batched, minimum=2)  # both parallel_maps + the search

    def test_hashtable_program(self):
        config = GenomicsConfig(
            genome_length=2000, bucket_size=400, read_length=40, n_reads=6, n_decoys=0,
            kmer_length=6,
        )
        dataset = make_genomics_dataset(config)
        app = HDHashtable(dimension=128)
        base_hvs = app.make_base_hypervectors()
        table = app.encode_reference_buckets(dataset, base_hvs)
        reads = np.stack([base_indices(read) for read in dataset.reads])
        program = app.build_program(
            reads.shape[0], reads.shape[1], dataset.n_buckets, config.kmer_length, base_hvs
        )
        reference, batched = run_both(program, reads=reads, bucket_table=table)
        assert np.array_equal(np.asarray(reference.output), np.asarray(batched.output))
        assert_vectorized(batched, minimum=2)  # k-mer encoding + the search


# ---------------------------------------------------------------------------
# Encoder equivalence across shapes and dtypes (property-style)
# ---------------------------------------------------------------------------


class TestEncoderEquivalence:
    @given(
        n_reads=st.integers(min_value=1, max_value=12),
        read_length=st.integers(min_value=1, max_value=40),
        kmer=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_hashtable_batched_encoder_matches_reference(
        self, n_reads, read_length, kmer, seed
    ):
        """Bit identity holds for every shape — including *ragged* k-mer
        counts: reads shorter than one k-mer encode to the zero vector on
        both routes."""
        app = HDHashtable(dimension=64, seed=9)
        base_hvs = app.make_base_hypervectors()
        encode_read = app._make_read_encoder(base_hvs, kmer)
        encode_reads = app._make_batched_read_encoder(base_hvs, kmer)
        reads = np.random.default_rng(seed).integers(0, 4, (n_reads, read_length)).astype(np.int64)
        reference = np.stack([encode_read(read) for read in reads])
        assert np.array_equal(reference, encode_reads(reads))

    @given(
        n_spectra=st.integers(min_value=1, max_value=12),
        n_bins=st.integers(min_value=1, max_value=48),
        n_levels=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_hyperoms_batched_encoder_matches_reference(
        self, n_spectra, n_bins, n_levels, seed
    ):
        app = HyperOMS(dimension=64, n_levels=n_levels, seed=11)
        id_hvs = bipolar_random(n_bins, 64, seed=11)
        level_hvs = make_level_hypervectors(n_levels, 64, seed=12)
        encode_spectrum = app._make_encoder(id_hvs, level_hvs)
        encode_spectra = app._make_batched_encoder(id_hvs, level_hvs)
        rng = np.random.default_rng(seed)
        spectra = (rng.random((n_spectra, n_bins)) * (rng.random((n_spectra, n_bins)) > 0.5)).astype(
            np.float32
        )
        reference = np.stack([encode_spectrum(row) for row in spectra])
        assert np.array_equal(reference, encode_spectra(spectra))

    def test_sub_kmer_reads_encode_to_zero_on_both_routes(self):
        app = HDHashtable(dimension=32, seed=9)
        base_hvs = app.make_base_hypervectors()
        encode_read = app._make_read_encoder(base_hvs, kmer_length=8)
        encode_reads = app._make_batched_read_encoder(base_hvs, kmer_length=8)
        short_reads = np.zeros((3, 5), dtype=np.int64)  # 5 < k = 8: zero k-mers
        assert np.array_equal(encode_reads(short_reads), np.zeros((3, 32), dtype=np.float32))
        assert np.array_equal(encode_read(short_reads[0]), np.zeros(32, dtype=np.float32))


# ---------------------------------------------------------------------------
# Edge shapes through the execution plane
# ---------------------------------------------------------------------------


class TestEdgeShapes:
    def _parallel_map_program(self, n_rows: int, batch_impl=None):
        prog = H.Program(f"edge_{n_rows}")

        def double_row(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return arr * 2.0

        @prog.entry(H.hm(n_rows, 8))
        def main(data):
            return H.parallel_map(double_row, data, output_dim=8, batch_impl=batch_impl)

        return prog

    @pytest.mark.parametrize("batched", [False, True])
    def test_empty_batch(self, batched):
        program = self._parallel_map_program(0, batch_impl=lambda m: np.asarray(m) * 2.0)
        result = CPUBackend(batched=batched).compile(program).run(
            data=np.zeros((0, 8), dtype=np.float32)
        )
        out = np.asarray(result.output)
        assert out.shape == (0, 8)

    @pytest.mark.parametrize("batched", [False, True])
    def test_single_row(self, batched):
        program = self._parallel_map_program(1, batch_impl=lambda m: np.asarray(m) * 2.0)
        data = np.arange(8, dtype=np.float32).reshape(1, 8)
        result = CPUBackend(batched=batched).compile(program).run(data=data)
        assert np.array_equal(np.asarray(result.output), data * 2.0)

    def test_eager_empty_batch(self):
        out = H.parallel_map(
            lambda row: np.asarray(row) * 2.0,
            H.HyperMatrix(np.zeros((0, 4), dtype=np.float32)),
        )
        assert np.asarray(out).shape == (0, 4)

    def test_eager_batch_impl_preferred_and_bit_identical(self):
        data = H.HyperMatrix(np.arange(12, dtype=np.float32).reshape(3, 4))

        def row_only(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return arr + 1.0

        out = H.parallel_map(row_only, data, batch_impl=lambda m: np.asarray(m) + 1.0)
        assert np.array_equal(np.asarray(out), np.asarray(data) + 1.0)


# ---------------------------------------------------------------------------
# The gate rejects non-bit-identical batched routes
# ---------------------------------------------------------------------------


class TestBitIdentityGate:
    def _program_with_lying_batch_impl(self):
        prog = H.Program("lying_batch_impl")

        def per_row(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return arr * 2.0

        def lying_batch(matrix):
            # Correct on row 0, off by one everywhere after — the classic
            # "looks vectorized, is not row-equivalent" bug the gate
            # exists to catch.
            out = np.asarray(matrix) * 2.0
            out[1:] += 1.0
            return out

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(per_row, data, output_dim=8, batch_impl=lying_batch)

        return prog

    def test_rejected_and_recorded_as_fallback(self):
        program = self._program_with_lying_batch_impl()
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        result = CPUBackend(batched=True).compile(program).run(data=data)
        # The per-row reference wins: the lying batched output is discarded.
        assert np.array_equal(np.asarray(result.output), data * 2.0)
        notes = result.report.notes
        assert notes["stage_fallbacks"] == 1
        assert notes["stage_vectorized"] == 0
        assert "bit-identical" in notes["batched_fallback"]
        reasons = notes["stage_fallback_reasons"]
        assert any("bit-identical" in reason for reason in reasons.values())

    def test_rejection_is_pinned_across_executions(self):
        """A rejected batched route is not retried on later executions of
        the same compiled program — a permanently falling-back model must
        cost what the per-row path costs, not per-row plus a discarded
        whole-batch attempt per batch — while still being counted as a
        fallback in every report."""
        calls = []

        def per_row(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return arr * 2.0

        def lying_batch(matrix):
            calls.append(1)
            out = np.asarray(matrix) * 2.0
            out[1:] += 1.0
            return out

        prog = H.Program("pinned_rejection")

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(per_row, data, output_dim=8, batch_impl=lying_batch)

        compiled = CPUBackend(batched=True).compile(prog)
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        first = compiled.run(data=data)
        second = compiled.run(data=data)
        assert len(calls) == 1  # the doomed whole-batch attempt ran once
        for result in (first, second):
            assert np.array_equal(np.asarray(result.output), data * 2.0)
            assert result.report.notes["stage_fallbacks"] == 1  # still visible

    def test_wrong_dtype_batch_impl_falls_back(self):
        """Bit identity includes the byte representation: a value-equal
        batched result in a different dtype must be rejected, or the
        program's output dtype would depend on which back end ran it."""
        prog = H.Program("wrong_dtype")

        def per_row(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return (arr * 2.0).astype(np.float32)

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(
                per_row,
                data,
                output_dim=8,
                batch_impl=lambda m: np.asarray(m, dtype=np.float64) * 2.0,
            )

        data = np.ones((4, 8), dtype=np.float32)
        result = CPUBackend(batched=True).compile(prog).run(data=data)
        out = np.asarray(result.output)
        assert out.dtype == np.float32  # the per-row reference won
        assert np.array_equal(out, data * 2.0)
        assert result.report.notes["stage_fallbacks"] == 1
        assert any(
            "dtype" in reason
            for reason in result.report.notes["stage_fallback_reasons"].values()
        )

    def test_wrong_shape_batch_impl_falls_back(self):
        prog = H.Program("wrong_shape")

        def per_row(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return arr * 3.0

        @prog.entry(H.hm(4, 8))
        def main(data):
            return H.parallel_map(
                per_row, data, output_dim=8, batch_impl=lambda m: np.asarray(m)[:2] * 3.0
            )

        data = np.ones((4, 8), dtype=np.float32)
        result = CPUBackend(batched=True).compile(prog).run(data=data)
        assert np.array_equal(np.asarray(result.output), data * 3.0)
        assert result.report.notes["stage_fallbacks"] == 1

    def test_fallback_counters_reach_server_stats(self):
        """A deployment whose batch_impl lies must show up in the
        per-deployment fallback counters of ServerStats.to_dict()."""
        rng = np.random.default_rng(5)

        def per_row(row):
            arr = np.asarray(row)
            if arr.ndim != 1:
                raise ValueError("rows only")
            return float(arr.sum() * 0 + int(arr[0] > 0))

        def build_program(batch_size: int) -> H.Program:
            prog = H.Program(f"lying_serve_b{batch_size}")

            def lying_batch(matrix):
                out = (np.asarray(matrix)[:, 0] > 0).astype(np.float32)
                out[1:] = 1.0 - out[1:]  # wrong everywhere after row 0
                return out

            @prog.entry(H.hm(batch_size, 4))
            def main(queries):
                return H.parallel_map(per_row, queries, output_dim=1, batch_impl=lying_batch)

            return prog

        # parallel_map returns one row per input; per_row yields a scalar,
        # so declare output_dim=1 and post-slice.  Shape mismatch between
        # the scalar reference and the 1-d lying batch output triggers the
        # gate's shape check — still a recorded fallback.
        from repro.serving.servable import Servable

        servable = Servable(
            name="lying-model",
            build_program=build_program,
            constants={},
            query_param="queries",
            sample_shape=(4,),
            supported_targets=("cpu",),
        )
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.001)
        server.register(servable)
        samples = rng.standard_normal((8, 4)).astype(np.float32)
        with server:
            server.infer_many("lying-model", list(samples))
            server.drain()
            stats = server.stats().to_dict()
        model = stats["model_stats"]["lying-model"]
        assert model["fallback_stages"] >= 1
        assert stats["fallback_stages"] >= 1
        assert model["stage_fallback_reasons"]
