"""Property-based tests (hypothesis) for core invariants of the system."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import hdcpp as H
from repro.backends import compile as hdc_compile
from repro.ir.builder import clone_program, lower_program
from repro.ir.verifier import verify_graph, verify_program
from repro.kernels import binary as binkern
from repro.kernels import reference as ref
from repro.serving.metrics import percentile as exact_percentile
from repro.serving.observability.histogram import DEFAULT_RELATIVE_ERROR, LatencyHistogram
from repro.transforms import ApproximationConfig, AutomaticBinarization, PerforationSpec


def bipolar(rows, dim, seed):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 2, size=(rows, dim)) * 2 - 1).astype(np.float32)


dims = st.integers(min_value=4, max_value=128)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestKernelProperties:
    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_sign_is_idempotent(self, dim, seed):
        x = np.random.default_rng(seed).normal(size=dim)
        once = ref.sign(x)
        assert np.array_equal(ref.sign(once), once)

    @given(dims, seeds, st.integers(-200, 200))
    @settings(max_examples=30, deadline=None)
    def test_wrap_shift_is_invertible(self, dim, seed, amount):
        x = np.random.default_rng(seed).normal(size=dim)
        assert np.allclose(ref.wrap_shift(ref.wrap_shift(x, amount), -amount), x)

    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_hamming_is_a_metric_on_bipolar_vectors(self, dim, seed):
        a, b, c = bipolar(3, dim, seed)
        dab = ref.hamming_distance(a, b)
        dba = ref.hamming_distance(b, a)
        dac = ref.hamming_distance(a, c)
        dbc = ref.hamming_distance(b, c)
        assert dab == dba
        assert ref.hamming_distance(a, a) == 0
        assert dac <= dab + dbc  # triangle inequality
        assert 0 <= dab <= dim

    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_cossim_is_bounded_and_symmetric(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=dim) + 0.01
        b = rng.normal(size=dim) + 0.01
        sab = ref.cossim(a, b)
        assert -1.0 - 1e-5 <= sab <= 1.0 + 1e-5
        assert sab == pytest.approx(ref.cossim(b, a), abs=1e-6)

    @given(dims, seeds, st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_perforated_hamming_is_bounded_by_exact(self, dim, seed, stride):
        a, b = bipolar(2, dim, seed)
        exact = ref.hamming_distance(a, b)
        perforated = ref.hamming_distance(a, b, 0, None, stride)
        assert perforated <= exact

    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_bundling_preserves_similarity_to_components(self, dim, seed):
        a, b, unrelated = bipolar(3, dim, seed)
        bundle = a + b
        assert float(bundle @ a) >= float(bundle @ unrelated) - dim * 0.5


packed_dtypes = st.sampled_from([np.int8, np.int32, np.float32, np.float64])
packed_dims = st.integers(min_value=1, max_value=150)  # crosses the 64/128 word edges
packed_rows = st.integers(min_value=0, max_value=6)  # 0 = empty batch


@st.composite
def packed_cases(draw):
    """Two bipolar matrices with a shared dim plus a perforation slice."""
    dim = draw(packed_dims)
    rows_a, rows_b = draw(packed_rows), draw(packed_rows)
    dtype = draw(packed_dtypes)
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    a = (rng.integers(0, 2, size=(rows_a, dim)) * 2 - 1).astype(dtype)
    b = (rng.integers(0, 2, size=(rows_b, dim)) * 2 - 1).astype(dtype)
    begin = draw(st.integers(0, max(0, dim - 1)))
    end = draw(st.one_of(st.none(), st.integers(begin + 1, dim)))
    stride = draw(st.integers(1, 7))
    return a, b, (begin, end, stride)


class TestPackedKernelProperties:
    """The uint64 packed plane agrees bit-for-bit with the reference
    kernels across dtypes, odd dims, empty batches and perforation
    slices — the invariant the serving route's boundary gate relies on."""

    @given(packed_cases())
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_round_trips_exactly(self, case):
        a, _, (begin, end, stride) = case
        dim = a.shape[1]
        packed = binkern.pack_bipolar(a)
        restored = binkern.unpack_bipolar(packed, dim)
        assert np.array_equal(restored, np.where(a > 0, 1, -1).astype(np.int8))
        # Round-trip holds under a perforation slice too: slicing the
        # restored bipolar rows equals slicing the originals.
        sl = slice(begin, end, stride)
        assert np.array_equal(restored[:, sl], np.where(a[:, sl] > 0, 1, -1).astype(np.int8))

    @given(packed_cases())
    @settings(max_examples=60, deadline=None)
    def test_packed_hamming_equals_reference(self, case):
        a, b, (begin, end, stride) = case
        expected = np.asarray(ref.hamming_distance(a, b, begin, end, stride))
        out = np.asarray(binkern.hamming_distance_bipolar(a, b, begin, end, stride))
        assert out.shape == expected.shape
        assert np.array_equal(out, expected)

    @given(packed_cases())
    @settings(max_examples=40, deadline=None)
    def test_packed_dot_and_cossim_equal_reference(self, case):
        a, b, _ = case
        expected_dot = np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64).T
        assert np.allclose(binkern.dot_bipolar(a, b), expected_dot)
        if a.shape[0] and b.shape[0]:
            assert np.allclose(
                binkern.cossim_bipolar(a, b),
                np.asarray(ref.cossim(a, b), dtype=np.float32),
                atol=1e-5,
            )

    @given(packed_cases())
    @settings(max_examples=40, deadline=None)
    def test_prepacked_operands_equal_unpacked(self, case):
        a, b, (begin, end, stride) = case
        pa, pb = binkern.pack_bipolar(a), binkern.pack_bipolar(b)
        expected = np.asarray(binkern.hamming_distance_bipolar(a, b, begin, end, stride))
        assert np.array_equal(
            np.asarray(binkern.hamming_distance_bipolar(pa, pb, begin, end, stride)), expected
        )

    @given(packed_cases())
    @settings(max_examples=30, deadline=None)
    def test_table_popcount_equals_native(self, case):
        a, b, (begin, end, stride) = case
        expected = np.asarray(binkern.hamming_distance_bipolar(a, b, begin, end, stride))
        original = binkern.popcount_words
        binkern.popcount_words = binkern._popcount_words_table
        try:
            out = np.asarray(binkern.hamming_distance_bipolar(a, b, begin, end, stride))
        finally:
            binkern.popcount_words = original
        assert np.array_equal(out, expected)


class TestCompilerProperties:
    @staticmethod
    def _make_program(dim, classes):
        prog = H.Program("prop")

        @prog.entry(H.hv(16), H.hm(classes, dim), H.hm(dim, 16))
        def main(query, class_hvs, rp):
            encoded = H.sign(H.matmul(query, rp))
            distances = H.hamming_distance(encoded, H.sign(class_hvs))
            return H.arg_min(distances)

        return prog

    @given(st.integers(8, 64), st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_lowered_graphs_always_verify(self, dim, classes):
        prog = self._make_program(dim, classes)
        graph = lower_program(prog)
        verify_graph(graph)

    @given(st.integers(8, 64), st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_binarization_keeps_program_verified(self, dim, classes):
        prog = clone_program(self._make_program(dim, classes))
        AutomaticBinarization().run(prog)
        verify_program(prog)

    @given(st.integers(16, 64), st.integers(2, 6), seeds)
    @settings(max_examples=10, deadline=None)
    def test_cpu_gpu_equivalence(self, dim, classes, seed):
        prog = self._make_program(dim, classes)
        rng = np.random.default_rng(seed)
        inputs = {
            "query": rng.normal(size=16).astype(np.float32),
            "class_hvs": rng.normal(size=(classes, dim)).astype(np.float32),
            "rp": (rng.integers(0, 2, size=(dim, 16)) * 2 - 1).astype(np.float32),
        }
        cpu = hdc_compile(prog, target="cpu").run(**inputs)
        gpu = hdc_compile(prog, target="gpu").run(**inputs)
        assert int(np.asarray(cpu.output)) == int(np.asarray(gpu.output))

    @given(st.integers(2, 6), seeds)
    @settings(max_examples=10, deadline=None)
    def test_perforation_stride_one_is_exact(self, classes, seed):
        prog = self._make_program(64, classes)
        rng = np.random.default_rng(seed)
        inputs = {
            "query": rng.normal(size=16).astype(np.float32),
            "class_hvs": rng.normal(size=(classes, 64)).astype(np.float32),
            "rp": (rng.integers(0, 2, size=(64, 16)) * 2 - 1).astype(np.float32),
        }
        exact = hdc_compile(prog, target="cpu").run(**inputs)
        config = ApproximationConfig(
            perforations=(PerforationSpec("hamming_distance", begin=0, end=None, stride=1),)
        )
        identity_perf = hdc_compile(prog, target="cpu", config=config).run(**inputs)
        assert int(np.asarray(exact.output)) == int(np.asarray(identity_perf.output))


# Latency samples above the histogram's underflow threshold (1e-6 s),
# spanning microseconds to ~3 hours — the relative-error guarantee only
# applies above min_value, and real latencies live in this range anyway.
latencies = st.lists(
    st.floats(min_value=1e-5, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def _hist(samples) -> LatencyHistogram:
    hist = LatencyHistogram()
    hist.record_many(samples)
    return hist


def _same_state(a: LatencyHistogram, b: LatencyHistogram) -> None:
    """Bucket-exact equality: merging is bucket-wise integer addition, so
    every field except the float ``sum`` (addition-order sensitive) must
    match exactly."""
    assert a._counts == b._counts
    assert a.count == b.count
    assert a.zero_count == b.zero_count
    assert a.min == b.min
    assert a.max == b.max
    assert a.sum == pytest.approx(b.sum, rel=1e-12)


class TestLatencyHistogramProperties:
    """The merge/serialize algebra the fleet-aggregation path relies on:
    shard histograms must combine in any order and survive a JSON hop
    without moving any quantile."""

    @given(latencies, latencies)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative(self, xs, ys):
        ab = _hist(xs).merge(_hist(ys))
        ba = _hist(ys).merge(_hist(xs))
        _same_state(ab, ba)

    @given(latencies, latencies, latencies)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, xs, ys, zs):
        a, b, c = _hist(xs), _hist(ys), _hist(zs)
        left = a.copy().merge(b.copy().merge(c.copy()))
        right = a.copy().merge(b.copy()).merge(c.copy())
        _same_state(left, right)

    @given(latencies, latencies)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_recording_everything_in_one(self, xs, ys):
        merged = _hist(xs).merge(_hist(ys))
        direct = _hist(xs + ys)
        _same_state(merged, direct)

    @given(latencies)
    @settings(max_examples=40, deadline=None)
    def test_to_dict_round_trips_exactly(self, xs):
        hist = _hist(xs)
        restored = LatencyHistogram.from_dict(hist.to_dict())
        _same_state(hist, restored)
        # ...and through an actual JSON hop, as on the serving transport.
        import json

        rewired = LatencyHistogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        _same_state(hist, rewired)
        for p in (50.0, 90.0, 99.0):
            assert restored.percentile(p) == hist.percentile(p)

    @given(latencies, latencies, st.sampled_from([25.0, 50.0, 90.0, 95.0, 99.0]))
    @settings(max_examples=60, deadline=None)
    def test_merged_quantiles_stay_within_relative_error(self, xs, ys, p):
        """The documented accuracy contract survives a merge: a quantile
        of two merged shard histograms is within DEFAULT_RELATIVE_ERROR
        of the exact nearest-rank percentile over the pooled samples."""
        merged = _hist(xs).merge(_hist(ys))
        exact = exact_percentile(xs + ys, p)
        assert merged.percentile(p) == pytest.approx(exact, rel=DEFAULT_RELATIVE_ERROR)

    @given(latencies)
    @settings(max_examples=40, deadline=None)
    def test_extreme_ranks_are_exact(self, xs):
        hist = _hist(xs)
        assert hist.percentile(0.0) == min(xs)
        assert hist.percentile(100.0) == max(xs)

    @given(latencies)
    @settings(max_examples=20, deadline=None)
    def test_incompatible_shapes_refuse_to_merge(self, xs):
        hist = _hist(xs)
        other = LatencyHistogram(relative_error=DEFAULT_RELATIVE_ERROR / 2)
        with pytest.raises(ValueError, match="different shapes"):
            hist.merge(other)


# -- rendezvous routing (repro.serving.replica.routing) --------------------------

model_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=24
)
model_sets = st.lists(model_names, min_size=1, max_size=40, unique=True)
replica_sets = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=8, unique=True
)


class TestRendezvousRoutingProperties:
    """Stability invariants of the HRW router every gateway relies on.

    The load-bearing claims: membership changes move only the models
    whose top choice changed (no unrelated churn), and scores are a pure
    function of the (model, replica) pair — deterministic across
    processes, so a fleet agrees on routes without coordination.
    """

    @given(model_names, replica_sets)
    @settings(max_examples=60, deadline=None)
    def test_route_is_the_top_of_the_rank(self, model, replicas):
        import hashlib

        from repro.serving.replica.routing import (
            rendezvous_rank,
            rendezvous_score,
            route,
        )

        choice = route(model, replicas)
        ranked = rendezvous_rank(model, replicas)
        assert choice in replicas
        assert ranked[0] == choice
        assert sorted(ranked) == sorted(replicas)  # a permutation, nothing lost
        # Cross-process determinism: the score IS the documented SHA-256
        # construction, with no process-local state (PYTHONHASHSEED or
        # otherwise) in the way.
        digest = hashlib.sha256(f"{model}|{choice}".encode("utf-8")).digest()
        assert rendezvous_score(model, choice) == int.from_bytes(digest[:8], "big")

    @given(model_sets, replica_sets)
    @settings(max_examples=60, deadline=None)
    def test_removal_moves_only_the_dead_replicas_models(self, models, replicas):
        """Kill one replica: exactly the models routed to it move (to
        their second choice); every other assignment is untouched."""
        from repro.serving.replica.routing import rendezvous_rank, route

        if len(replicas) < 2:
            return
        before = {model: route(model, replicas) for model in models}
        dead = replicas[0]
        survivors = [index for index in replicas if index != dead]
        after = {model: route(model, survivors) for model in models}
        for model in models:
            if before[model] != dead:
                assert after[model] == before[model]  # unrelated models never churn
            else:
                # The displaced model lands on its pre-computed second
                # choice — failover needs no new hashing decisions.
                assert after[model] == rendezvous_rank(model, replicas)[1]

    @given(model_sets, replica_sets, st.integers(min_value=64, max_value=127))
    @settings(max_examples=60, deadline=None)
    def test_addition_moves_at_most_the_new_replicas_share(self, models, replicas, new):
        """Grow the group by one replica: only models that rank the new
        replica first move, and they move *to* it.  In expectation that
        is 1/(n+1) of the models — the bounded-churn property modulo
        hashing lacks (where adding a replica reshuffles nearly all)."""
        from repro.serving.replica.routing import route

        grown = replicas + [new]
        before = {model: route(model, replicas) for model in models}
        after = {model: route(model, grown) for model in models}
        moved = [model for model in models if after[model] != before[model]]
        for model in moved:
            assert after[model] == new  # movers only ever move to the newcomer
        # Deterministic bound: the movers are exactly the models whose
        # top choice among the grown set is the new replica.
        expected_movers = {model for model in models if route(model, grown) == new}
        assert set(moved) == {m for m in expected_movers if before[m] != new}

    @given(model_sets, replica_sets)
    @settings(max_examples=30, deadline=None)
    def test_routing_is_order_independent(self, models, replicas):
        """The route depends on the membership *set*, not the order a
        client happened to list the replicas in."""
        from repro.serving.replica.routing import route

        reversed_replicas = list(reversed(replicas))
        for model in models:
            assert route(model, replicas) == route(model, reversed_replicas)
