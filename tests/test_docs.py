"""The documentation suite must exist and its code snippets must run.

README.md and docs/*.md embed runnable ```python blocks; this test drives
the same extractor/executor as the CI docs job
(``tools/check_doc_snippets.py``) so a doc edit that breaks a snippet
fails tier-1 locally, not just in CI.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_checker():
    path = REPO_ROOT / "tools" / "check_doc_snippets.py"
    spec = importlib.util.spec_from_file_location("check_doc_snippets", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_documentation_files_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "SERVING.md").is_file()


def test_extractor_respects_skip_marker():
    text = "\n".join(
        [
            "intro",
            "```python",
            "x = 1",
            "```",
            checker.SKIP_MARKER,
            "```python",
            "raise RuntimeError('never runs')",
            "```",
            "```text",
            "not python",
            "```",
        ]
    )
    snippets = checker.extract_snippets(text)
    assert len(snippets) == 1
    assert snippets[0][1] == "x = 1"


@pytest.mark.parametrize(
    "path", [pytest.param(p, id=str(p.relative_to(REPO_ROOT))) for p in checker.default_files()]
)
def test_doc_snippets_execute(path):
    count = checker.run_file(path)
    assert count >= 1, f"{path} has no runnable snippets — docs must stay executable"
