"""Tests for the digital ASIC and ReRAM accelerator back ends."""

import numpy as np
import pytest

from repro import hdcpp as H
from repro.backends import DigitalASICBackend, ReRAMBackend, compile as hdc_compile
from repro.transforms import ApproximationConfig, PerforationSpec


def build_train_infer_program(n_train=30, n_test=15, features=16, dim=128, classes=4):
    prog = H.Program("accelerator_app")

    @prog.define(H.hv(features), H.hm(classes, dim), H.hm(dim, features))
    def infer_one(query, class_hvs, rp):
        encoded = H.sign(H.matmul(query, rp))
        return H.arg_min(H.hamming_distance(encoded, H.sign(class_hvs)))

    def train_one(query, label, class_hvs, rp):
        encoded = np.sign(np.asarray(query) @ np.asarray(rp).T)
        updated = np.array(class_hvs, copy=True)
        updated[label] += encoded
        return updated

    @prog.entry(
        H.hm(n_train, features),
        H.IndexVectorType(n_train),
        H.hm(n_test, features),
        H.hm(dim, features),
        H.hm(classes, dim),
    )
    def main(train_q, train_labels, test_q, rp, class_hvs):
        trained = H.training_loop(train_one, train_q, train_labels, class_hvs, epochs=2, encoder=rp)
        return H.inference_loop(infer_one, test_q, trained, encoder=rp), trained

    return prog


@pytest.fixture()
def toy_data():
    rng = np.random.default_rng(11)
    features, classes, n_train, n_test = 16, 4, 30, 15
    prototypes = rng.normal(size=(classes, features))
    train_labels = rng.integers(0, classes, n_train)
    test_labels = rng.integers(0, classes, n_test)
    train = prototypes[train_labels] + 0.2 * rng.normal(size=(n_train, features))
    test = prototypes[test_labels] + 0.2 * rng.normal(size=(n_test, features))
    rp = (rng.integers(0, 2, size=(128, features)) * 2 - 1).astype(np.float32)
    return {
        "train_q": train.astype(np.float32),
        "train_labels": train_labels,
        "test_q": test.astype(np.float32),
        "rp": rp,
        "class_hvs": np.zeros((classes, 128), dtype=np.float32),
        "test_labels": test_labels,
    }


@pytest.mark.parametrize("target", ["hdc_asic", "hdc_reram"])
class TestAcceleratorExecution:
    def test_train_and_infer_produces_good_accuracy(self, target, toy_data):
        prog = build_train_infer_program()
        compiled = hdc_compile(prog, target=target)
        inputs = {k: v for k, v in toy_data.items() if k != "test_labels"}
        result = compiled.run(**inputs)
        predictions = np.asarray(result.outputs[prog.entry_function.results[0].name])
        accuracy = (predictions == toy_data["test_labels"]).mean()
        assert accuracy > 0.7

    def test_device_counters_flow_into_report(self, target, toy_data):
        prog = build_train_infer_program()
        compiled = hdc_compile(prog, target=target)
        inputs = {k: v for k, v in toy_data.items() if k != "test_labels"}
        report = compiled.run(**inputs).report
        assert report.device_seconds > 0
        assert report.bytes_to_device > 0
        assert report.energy_joules > 0
        assert report.notes["train_iterations"] == 60  # 30 samples x 2 epochs
        assert report.notes["inferences"] == 15

    def test_redundant_base_transfer_is_elided(self, target, toy_data):
        prog = build_train_infer_program()
        compiled = hdc_compile(prog, target=target)
        inputs = {k: v for k, v in toy_data.items() if k != "test_labels"}
        report = compiled.run(**inputs).report
        # Training programs the base memory; the inference stage reuses it.
        assert report.notes["elided_transfers"] >= 1

    def test_approximations_rejected(self, target):
        prog = build_train_infer_program()
        with pytest.raises(ValueError):
            hdc_compile(prog, target=target, config=ApproximationConfig(binarize=True))
        with pytest.raises(ValueError):
            hdc_compile(
                prog,
                target=target,
                config=ApproximationConfig(perforations=(PerforationSpec("matmul", stride=2),)),
            )

    def test_training_without_encoder_rejected(self, target, toy_data):
        prog = H.Program("no_encoder")

        def train_one(query, label, class_hvs):
            return class_hvs

        @prog.entry(H.hm(10, 16), H.IndexVectorType(10), H.hm(4, 128))
        def main(train_q, labels, class_hvs):
            return H.training_loop(train_one, train_q, labels, class_hvs)

        compiled = hdc_compile(prog, target=target)
        with pytest.raises(Exception):
            compiled.run(
                train_q=toy_data["train_q"][:10],
                labels=toy_data["train_labels"][:10],
                class_hvs=toy_data["class_hvs"],
            )


class TestPreEncodedInference:
    @pytest.mark.parametrize("target", ["hdc_asic", "hdc_reram"])
    def test_inference_without_encoder_uses_encoded_queries(self, target):
        rng = np.random.default_rng(3)
        dim, classes, n = 128, 5, 20
        class_hvs = np.sign(rng.normal(size=(classes, dim))).astype(np.float32)
        labels = rng.integers(0, classes, n)
        queries = class_hvs[labels].copy()

        prog = H.Program("pre_encoded")

        @prog.define(H.hv(dim), H.hm(classes, dim))
        def assign_one(encoded, clusters):
            return H.arg_min(H.hamming_distance(H.sign(encoded), H.sign(clusters)))

        @prog.entry(H.hm(n, dim), H.hm(classes, dim))
        def main(encoded, clusters):
            return H.inference_loop(assign_one, encoded, clusters)

        compiled = hdc_compile(prog, target=target)
        predictions = np.asarray(compiled.run(encoded=queries, clusters=class_hvs).output)
        assert np.array_equal(predictions, labels)


class TestBackendConstruction:
    def test_custom_device_instance_is_used(self):
        from repro.accelerators import DigitalHDCASIC, ReRAMAccelerator

        asic_device = DigitalHDCASIC()
        backend = DigitalASICBackend(device=asic_device)
        assert backend.device is asic_device

        reram_device = ReRAMAccelerator()
        backend = ReRAMBackend(device=reram_device)
        assert backend.device is reram_device


class TestDeviceCounters:
    def test_merge_accumulates_every_field(self):
        from repro.accelerators.interface import DeviceCounters

        a = DeviceCounters(device_seconds=1.0, bytes_to_device=10.0, encodes=2, inferences=3)
        b = DeviceCounters(device_seconds=0.5, bytes_to_device=5.0, encodes=1, train_iterations=7)
        a.merge(b)
        assert a.device_seconds == 1.5
        assert a.bytes_to_device == 15.0
        assert a.encodes == 3
        assert a.inferences == 3
        assert a.train_iterations == 7

    def test_copy_and_delta(self):
        from repro.accelerators.interface import DeviceCounters

        counters = DeviceCounters(device_seconds=2.0, inferences=4)
        snapshot = counters.copy()
        counters.merge(DeviceCounters(device_seconds=1.0, inferences=6))
        delta = counters.delta(snapshot)
        assert snapshot.device_seconds == 2.0  # snapshot unaffected
        assert delta.device_seconds == 1.0
        assert delta.inferences == 6


class TestSessionReuse:
    def test_persistent_session_elides_transfers_across_runs(self, toy_data):
        prog = build_train_infer_program()
        backend = DigitalASICBackend(reuse_session=True)
        compiled = backend.compile(prog)
        inputs = {k: v for k, v in toy_data.items() if k != "test_labels"}
        first = compiled.run(**inputs).report
        second = compiled.run(**inputs).report
        # The warm session keeps the base memory resident: the second run
        # re-uses it where the first had to program it.
        assert second.notes["elided_transfers"] > first.notes["elided_transfers"]
        assert second.bytes_to_device < first.bytes_to_device
        # Reports stay per-call: the second run's modeled inference count
        # matches one execution, not the session total.
        assert second.notes["inferences"] == first.notes["inferences"]

    def test_fresh_sessions_by_default(self, toy_data):
        prog = build_train_infer_program()
        backend = ReRAMBackend()
        compiled = backend.compile(prog)
        inputs = {k: v for k, v in toy_data.items() if k != "test_labels"}
        first = compiled.run(**inputs).report
        second = compiled.run(**inputs).report
        assert second.notes["elided_transfers"] == first.notes["elided_transfers"]
        assert second.bytes_to_device == first.bytes_to_device
