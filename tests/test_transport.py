"""Tests for the network front end (repro.serving.transport).

The end-to-end tests launch the asyncio socket server over a running
:class:`InferenceServer` and drive it with blocking clients — including
the multi-client smoke test the CI transport job runs under a pytest
timeout (a hung event loop fails fast instead of stalling the workflow).
"""

from __future__ import annotations

import importlib.util
import io
import json
import pathlib
import struct
import threading
import time

import numpy as np
import pytest

from repro import hdcpp as H
from repro.apps.classification import classification_servable
from repro.apps.common import bipolar_random
from repro.backends import compile as hdc_compile
from repro.serving import DeadlineExceeded, InferenceServer, Servable
from repro.serving.transport import (
    PROTOCOL_VERSION,
    FrameError,
    ProtocolVersionError,
    RemoteServingError,
    ServingClient,
    TransportServer,
    decode_array,
    encode_array_header,
    encode_frame,
    read_frame_sync,
)

DIM = 128
CLASSES = 6
N_QUERIES = 40


def make_servable(seed: int = 5, name: str = "bipolar-net") -> Servable:
    """A bipolar classifier: exact in every path, so served results must be
    bit-identical to per-request execution."""
    classes = bipolar_random(CLASSES, DIM, seed=seed)

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_b{batch_size}")

        @prog.define(H.hv(DIM), H.hm(CLASSES, DIM))
        def infer_one(encoding, class_hvs):
            distances = H.hamming_distance(H.sign(encoding), H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(H.hm(batch_size, DIM), H.hm(CLASSES, DIM))
        def main(encodings, class_hvs):
            return H.inference_loop(infer_one, encodings, class_hvs)

        return prog

    return Servable(
        name=name,
        build_program=build_program,
        constants={"class_hvs": classes},
        query_param="encodings",
        sample_shape=(DIM,),
        supported_targets=("cpu", "gpu"),
    )


@pytest.fixture(scope="module")
def servable():
    return make_servable()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(11)
    return (rng.integers(0, 2, (N_QUERIES, DIM)) * 2 - 1).astype(np.float32)


@pytest.fixture(scope="module")
def expected_labels(servable, queries):
    handle = hdc_compile(servable.build_program(1), target="cpu").bind(**servable.constants)
    return [
        int(np.asarray(handle.run(encodings=queries[i : i + 1]).output)[0])
        for i in range(queries.shape[0])
    ]


@pytest.fixture(scope="module")
def serving_stack(servable):
    """A running InferenceServer + TransportServer on an ephemeral port."""
    server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=16, max_wait_seconds=0.002)
    server.register(servable, slo_ms=30_000.0)
    server.start()
    transport = TransportServer(server)
    host, port = transport.start()
    yield server, host, port
    transport.stop()
    server.stop()


class TestFrameProtocol:
    def test_frame_round_trip(self):
        header = {"op": "infer", "model": "m", "priority": 2, "deadline_ms": None}
        payload = b"\x00\x01\x02payload"
        frame = encode_frame(header, payload)
        got_header, got_payload = read_frame_sync(io.BytesIO(frame))
        assert got_header == header and got_payload == payload

    def test_empty_payload_round_trip(self):
        frame = encode_frame({"op": "stats"})
        header, payload = read_frame_sync(io.BytesIO(frame))
        assert header == {"op": "stats"} and payload == b""

    def test_array_round_trip(self):
        rng = np.random.default_rng(0)
        for array in (
            rng.standard_normal((3, 5)).astype(np.float32),
            np.arange(7, dtype=np.int64),
            np.int64(42),  # 0-d result scalar
        ):
            fields, payload = encode_array_header(np.asarray(array))
            restored = decode_array(fields, payload)
            assert np.array_equal(restored, np.asarray(array))
            assert restored.dtype == np.asarray(array).dtype

    def test_truncated_stream_raises(self):
        frame = encode_frame({"op": "ping"}, b"1234")
        with pytest.raises(FrameError):
            read_frame_sync(io.BytesIO(frame[:-2]))

    def test_oversized_prefix_rejected(self):
        bogus = struct.pack("!II", 2**31, 16)
        with pytest.raises(FrameError):
            read_frame_sync(io.BytesIO(bogus + b"\x00" * 64))

    def test_non_object_header_rejected(self):
        body = json.dumps([1, 2]).encode()
        frame = struct.pack("!II", len(body), 0) + body
        with pytest.raises(FrameError):
            read_frame_sync(io.BytesIO(frame))

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(FrameError):
            decode_array({"dtype": "float32", "shape": [4]}, b"\x00" * 8)


class TestSocketServing:
    def test_infer_matches_in_process(self, serving_stack, servable, queries, expected_labels):
        server, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            assert client.ping()
            for i in range(8):
                remote = int(client.infer(servable.name, queries[i]))
                local = int(np.asarray(server.infer(servable.name, queries[i])))
                assert remote == local == expected_labels[i]

    def test_infer_batch_row_aligned(self, serving_stack, servable, queries, expected_labels):
        _, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            out = client.infer_batch(servable.name, queries)
            assert out.shape == (N_QUERIES,)
            assert [int(v) for v in out] == expected_labels

    def test_list_models_and_stats(self, serving_stack, servable):
        _, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            client.infer(servable.name, np.ones(DIM, dtype=np.float32))
            client.drain()
            assert servable.name in client.list_models()
            stats = client.stats()
            assert stats["requests"] >= 1
            assert stats["failures"] == 0
            model = stats["model_stats"][servable.name]
            assert model["requests"] >= 1
            assert model["slo_ms"] == 30_000.0
            assert model["slo_violations"] == 0
            assert model["mean_queue_wait_ms"] >= 0.0
            assert model["mean_execute_ms"] > 0.0
            json.dumps(stats)  # the whole snapshot is JSON-serializable

    def test_expired_deadline_raises_typed_error(self, serving_stack, servable, queries):
        _, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            with pytest.raises(DeadlineExceeded):
                client.infer(servable.name, queries[0], deadline_ms=1e-6)
            # The connection survives a shed request.
            assert int(client.infer(servable.name, queries[0])) >= 0

    def test_unknown_model_is_request_error_not_disconnect(self, serving_stack, servable, queries):
        _, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.infer("no-such-model", queries[0])
            assert excinfo.value.error_type == "KeyError"
            with pytest.raises(RemoteServingError):
                client.infer_batch(servable.name, np.zeros((0, DIM), dtype=np.float32))
            assert int(client.infer(servable.name, queries[0])) >= 0

    def test_bad_sample_shape_reported(self, serving_stack, servable):
        _, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.infer(servable.name, np.zeros(DIM + 1, dtype=np.float32))
            assert excinfo.value.error_type == "ValueError"

    def test_multi_client_smoke(self, serving_stack, servable, queries, expected_labels):
        """8 concurrent socket clients; every result bit-identical.

        This is the smoke test CI runs against the launched socket server
        (with a pytest timeout so a hung event loop fails the job fast).
        """
        _, host, port = serving_stack
        n_clients, per_client = 8, 10
        rng = np.random.default_rng(7)
        picks = rng.integers(0, N_QUERIES, size=(n_clients, per_client))
        results = [[None] * per_client for _ in range(n_clients)]
        errors = []

        def client_thread(c: int) -> None:
            try:
                with ServingClient(host, port, timeout=60.0) as client:
                    for j, index in enumerate(picks[c]):
                        results[c][j] = int(client.infer(servable.name, queries[index]))
            except Exception as exc:  # surfaces in the main thread's assert
                errors.append((c, exc))

        threads = [threading.Thread(target=client_thread, args=(c,)) for c in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        for c in range(n_clients):
            for j, index in enumerate(picks[c]):
                assert results[c][j] == expected_labels[index]


class TestProtocolHandshake:
    """PROTOCOL_VERSION is enforced, not informational: mismatched (or
    handshake-less) clients are rejected with a typed error frame."""

    def test_mismatched_client_version_raises_typed_error(self, serving_stack, monkeypatch):
        _, host, port = serving_stack
        from repro.serving.transport import client as client_module

        monkeypatch.setattr(client_module, "PROTOCOL_VERSION", 999)
        with pytest.raises(ProtocolVersionError) as excinfo:
            # max_retries must NOT heal a deterministic version mismatch —
            # the typed error escapes the reconnect machinery immediately.
            ServingClient(host, port, timeout=5.0, max_retries=5, backoff_seconds=0.01)
        assert "999" in str(excinfo.value)
        assert str(PROTOCOL_VERSION) in str(excinfo.value)

    def test_legacy_client_without_hello_is_rejected(self, serving_stack):
        """A pre-handshake client whose first frame is an operation gets
        the typed rejection frame, then the connection is closed."""
        import socket as socket_module

        _, host, port = serving_stack
        with socket_module.create_connection((host, port), timeout=5.0) as sock:
            sock.settimeout(5.0)
            stream = sock.makefile("rb")
            sock.sendall(encode_frame({"op": "ping"}))  # no hello first
            header, _ = read_frame_sync(stream)
            assert header["ok"] is False
            assert header["error_type"] == "ProtocolVersionError"
            assert header["version"] == PROTOCOL_VERSION  # server reports its side
            with pytest.raises(FrameError):  # server hung up after rejecting
                read_frame_sync(stream)

    def test_matching_handshake_is_acknowledged(self, serving_stack):
        import socket as socket_module

        _, host, port = serving_stack
        with socket_module.create_connection((host, port), timeout=5.0) as sock:
            sock.settimeout(5.0)
            stream = sock.makefile("rb")
            sock.sendall(encode_frame({"op": "hello", "version": PROTOCOL_VERSION}))
            header, _ = read_frame_sync(stream)
            assert header == {"ok": True, "version": PROTOCOL_VERSION}
            sock.sendall(encode_frame({"op": "ping"}))  # connection stays usable
            header, _ = read_frame_sync(stream)
            assert header["ok"] is True and header["running"] is True


class TestOnlineUpdateOverTheWire:
    """The transport's update / model_versions ops: online re-training
    with versioned zero-downtime hot-swap, driven from a socket client."""

    N_FEATURES, N_CLASSES, UPD_DIM = 16, 4, 64

    def _updatable_stack(self):
        rng = np.random.default_rng(23)
        servable = classification_servable(
            "net-updatable",
            dimension=self.UPD_DIM,
            similarity="hamming",
            rp_matrix=bipolar_random(self.UPD_DIM, self.N_FEATURES, seed=3),
            classes=rng.standard_normal((self.N_CLASSES, self.UPD_DIM)).astype(np.float32),
        )
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.001)
        server.register(servable)
        server.register(make_servable(name="net-frozen"))  # no update rule
        server.start()
        transport = TransportServer(server)
        host, port = transport.start()
        return server, transport, host, port, servable

    def test_update_bumps_version_and_serves_retrained_state(self):
        server, transport, host, port, servable = self._updatable_stack()
        rng = np.random.default_rng(29)
        samples = rng.standard_normal((12, self.N_FEATURES)).astype(np.float32)
        labels = rng.integers(0, self.N_CLASSES, 12)
        try:
            with ServingClient(host, port, timeout=30.0) as client:
                assert client.model_versions() == {"net-frozen": 1, "net-updatable": 1}
                before = int(client.infer(servable.name, samples[0]))
                assert client.update(servable.name, samples, labels) == 2
                assert client.model_versions()["net-updatable"] == 2
                # The served state now equals an offline retrain on the
                # same mini-batch (same rule, bit-identical constants) and
                # predictions match its one-shot execution exactly.
                offline = servable.updated(samples, labels)
                live = server.registry.get(servable.name).servable
                assert np.array_equal(
                    offline.constants["class_hvs"], live.constants["class_hvs"]
                )
                handle = hdc_compile(offline.build_program(1), target="cpu").bind(
                    **offline.constants
                )
                for i in range(4):
                    expected = int(
                        np.asarray(handle.run(queries=samples[i : i + 1]).output)[0]
                    )
                    assert int(client.infer(servable.name, samples[i])) == expected
                client.drain()
                stats = client.stats()
                assert stats["swaps"] == 1
                assert stats["failures"] == 0
                model = stats["model_stats"][servable.name]
                assert model["version"] == 2 and model["swaps"] == 1
                assert sum(model["requests_by_version"].values()) == model["requests"]
                assert before in range(self.N_CLASSES)
        finally:
            transport.stop()
            server.stop()

    def test_update_rejects_float_labels_client_side(self):
        """The client must not silently truncate 1.7 -> 1 on the wire —
        same integer-labels contract as the local Servable.updated path."""
        server, transport, host, port, servable = self._updatable_stack()
        try:
            with ServingClient(host, port, timeout=30.0) as client:
                with pytest.raises(ValueError):
                    client.update(
                        servable.name,
                        np.zeros((2, self.N_FEATURES), dtype=np.float32),
                        np.array([0.0, 1.7]),
                    )
                assert client.model_versions()[servable.name] == 1  # nothing landed
        finally:
            transport.stop()
            server.stop()

    def test_update_on_frozen_model_reports_typed_error(self):
        server, transport, host, port, _ = self._updatable_stack()
        try:
            with ServingClient(host, port, timeout=30.0) as client:
                with pytest.raises(RemoteServingError) as excinfo:
                    client.update(
                        "net-frozen",
                        np.zeros((2, DIM), dtype=np.float32),
                        np.zeros(2, dtype=np.int64),
                    )
                assert excinfo.value.error_type == "NotUpdatableError"
                # The connection survives the typed rejection.
                assert client.model_versions()["net-frozen"] == 1
        finally:
            transport.stop()
            server.stop()


class TestClientConnectionHygiene:
    def test_timeout_poisons_the_connection(self):
        """A response timeout desynchronizes request/response framing, so
        the client must refuse further use instead of silently reading a
        stale reply (there is no per-request id to re-correlate).  The
        fake server completes the version handshake, then goes silent."""
        import socket as socket_module

        from repro.serving.transport import PROTOCOL_VERSION, encode_frame

        accepted = []

        def mute_after_handshake(sock):
            conn, _ = sock.accept()
            accepted.append(conn)
            stream = conn.makefile("rb")
            accepted.append(stream)
            read_frame_sync(stream)  # the hello
            conn.sendall(encode_frame({"ok": True, "version": PROTOCOL_VERSION}))
            # ... then read nothing, reply nothing.

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        thread = threading.Thread(target=mute_after_handshake, args=(listener,), daemon=True)
        thread.start()
        host, port = listener.getsockname()
        client = ServingClient(host, port, timeout=0.2)
        try:
            with pytest.raises(OSError):  # socket.timeout
                client.ping()
            with pytest.raises(ConnectionError):
                client.ping()  # poisoned: refuses instead of desyncing
        finally:
            client.close()
            thread.join()
            for conn in accepted:
                conn.close()
            listener.close()


class TestResetStatsOverTheWire:
    def test_scrape_then_reset_interval_idiom(self, serving_stack, servable, queries):
        """stats -> reset_stats over the frame protocol zeroes the window,
        so each scrape covers its own interval (the scraper tool's idiom)."""
        server, host, port = serving_stack
        with ServingClient(host, port, timeout=30.0) as client:
            client.infer(servable.name, queries[0])
            server.drain()
            first = client.stats()
            assert first["requests"] >= 1
            client.reset_stats()
            second = client.stats()
            assert second["requests"] == 0
            # Per-deployment batched-plane counters reset with the window.
            for model in second["model_stats"].values():
                assert model["vectorized_stages"] == 0
                assert model["fallback_stages"] == 0


class TestClientRetries:
    def _stack(self, servable):
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.001)
        server.register(servable)
        server.start()
        transport = TransportServer(server)
        host, port = transport.start()
        return server, transport, host, port

    def test_reconnects_after_server_restart_mid_session(
        self, servable, queries, expected_labels
    ):
        """Kill the transport mid-session, restart it on the same port: a
        client with retries heals (reconnect + resend with capped
        exponential backoff) instead of raising."""
        server, transport, host, port = self._stack(servable)
        replacement = TransportServer(server, port=port)
        client = ServingClient(
            host, port, timeout=10.0, max_retries=10, backoff_seconds=0.02
        )
        try:
            label = int(np.asarray(client.infer(servable.name, queries[0])))
            assert label == expected_labels[0]

            transport.stop()  # kill the socket front end under the client

            def restart_later():
                time.sleep(0.2)  # let a few reconnect attempts fail first
                replacement.start()

            restarter = threading.Thread(target=restart_later, daemon=True)
            restarter.start()
            label = int(np.asarray(client.infer(servable.name, queries[1])))
            restarter.join()
            assert label == expected_labels[1]
            assert client.reconnects >= 1

            # The healed connection is a normal connection: stats work too.
            assert client.stats()["requests"] >= 0
        finally:
            client.close()
            replacement.stop()
            server.stop()

    def test_constructor_retries_cover_initial_connection(self, servable, queries):
        """A client constructed before the transport is listening waits
        out the gap with the same retry budget (scraper launch-order
        case) instead of dying on the doorstep."""
        server = InferenceServer(workers=("cpu",), max_batch_size=8, max_wait_seconds=0.001)
        server.register(servable)
        server.start()
        probe = TransportServer(server)
        host, port = probe.start()
        probe.stop()  # port known, nothing listening yet
        late = TransportServer(server, port=port)

        def start_later():
            time.sleep(0.2)
            late.start()

        starter = threading.Thread(target=start_later, daemon=True)
        starter.start()
        try:
            client = ServingClient(
                host, port, timeout=10.0, max_retries=10, backoff_seconds=0.02
            )
            starter.join()
            with client:
                assert client.ping()
        finally:
            late.stop()
            server.stop()

    def test_fail_fast_without_retries(self, servable, queries):
        """max_retries=0 keeps the original contract: first transport
        failure poisons the connection and the error propagates."""
        server, transport, host, port = self._stack(servable)
        client = ServingClient(host, port, timeout=5.0)
        try:
            client.ping()
            transport.stop()
            with pytest.raises((ConnectionError, OSError)):
                client.infer(servable.name, queries[0])
            with pytest.raises(ConnectionError):
                client.ping()  # still poisoned, no silent reconnect
        finally:
            client.close()
            server.stop()

    def test_retry_budget_exhausts_when_server_stays_down(self, servable, queries):
        server, transport, host, port = self._stack(servable)
        client = ServingClient(
            host, port, timeout=5.0, max_retries=2, backoff_seconds=0.01
        )
        try:
            client.ping()
            transport.stop()
            server.stop()
            start = time.perf_counter()
            with pytest.raises((ConnectionError, OSError)):
                client.infer(servable.name, queries[0])
            # Both backoff sleeps ran before giving up (0.01s + 0.02s).
            assert time.perf_counter() - start >= 0.03
            assert client.reconnects == 0  # no successful reconnect: server stayed down
        finally:
            client.close()


class TestScrapeStatsTool:
    def test_scrapes_intervals_to_json_lines(self, serving_stack, servable, queries, tmp_path):
        """tools/scrape_stats.py appends one JSON record per interval and
        resets the window between scrapes."""
        server, host, port = serving_stack
        scrape_stats = self._load_tool()

        server.infer(servable.name, queries[0])
        server.drain()
        out = tmp_path / "metrics.jsonl"
        exit_code = scrape_stats.main(
            ["--port", str(port), "--interval", "0.01", "--count", "2", "--out", str(out)]
        )
        assert exit_code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["stats"]["requests"] >= 1
        assert records[1]["stats"]["requests"] == 0  # window reset between scrapes
        assert records[0]["interval_seconds"] == 0.01
        for record in records:
            assert "scraped_at" in record
            assert "vectorized_stages" in record["stats"]

    def _load_tool(self):
        spec = importlib.util.spec_from_file_location(
            "scrape_stats",
            pathlib.Path(__file__).resolve().parent.parent / "tools" / "scrape_stats.py",
        )
        scrape_stats = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(scrape_stats)
        return scrape_stats

    def test_fail_on_thresholds_gate_live_scrapes(
        self, serving_stack, servable, queries, tmp_path
    ):
        """--fail-on turns the scraper into an alerting gate: a violated
        threshold (or a missing metric) makes the exit code non-zero."""
        server, host, port = serving_stack
        scrape_stats = self._load_tool()
        server.infer(servable.name, queries[0])
        server.drain()
        out = tmp_path / "gated.jsonl"
        base = ["--port", str(port), "--interval", "0.01", "--count", "1", "--out", str(out)]
        # A threshold that cannot trip on a healthy server: clean exit.
        assert scrape_stats.main(base + ["--fail-on", "failures>0"]) == 0
        # One that must trip (some requests were served this interval)...
        server.infer(servable.name, queries[0])
        server.drain()
        assert scrape_stats.main(base + ["--fail-on", "requests>=1"]) == 1
        # ...and a missing metric is a violation, never a silent pass.
        assert scrape_stats.main(base + ["--fail-on", "no_such_metric>0"]) == 1

    def test_check_mode_replays_thresholds_offline(self, tmp_path):
        """--check evaluates --fail-on against an existing JSONL series or
        a single JSON document (the CI perf-smoke wiring)."""
        scrape_stats = self._load_tool()
        series = tmp_path / "series.jsonl"
        series.write_text(
            json.dumps({"scraped_at": 1.0, "stats": {"fallback_stages": 0}})
            + "\n"
            + json.dumps({"scraped_at": 2.0, "stats": {"fallback_stages": 3}})
            + "\n"
            # A lost-interval marker (connection blip) is skipped, matching
            # live mode — never counted as a missing-metric violation.
            + json.dumps({"scraped_at": 3.0, "error": "ConnectionError: gone"})
            + "\n"
        )
        assert scrape_stats.main(
            ["--check", str(series), "--fail-on", "fallback_stages>0"]
        ) == 1
        assert scrape_stats.main(
            ["--check", str(series), "--fail-on", "fallback_stages>3"]
        ) == 0
        bench = tmp_path / "BENCH_serving.json"
        bench.write_text(
            json.dumps({"cases": {"stock_apps_vectorized": {"aggregate_fallbacks": 0}}})
        )
        assert scrape_stats.main(
            [
                "--check", str(bench),
                "--fail-on", "cases.stock_apps_vectorized.aggregate_fallbacks>0",
            ]
        ) == 0
        assert scrape_stats.main(
            [
                "--check", str(bench),
                "--fail-on", "cases.stock_apps_vectorized.aggregate_fallbacks>=0",
            ]
        ) == 1

    def test_threshold_expression_parsing(self):
        scrape_stats = self._load_tool()
        threshold = scrape_stats.Threshold("model_stats.my-model.fallback_stages>0")
        assert threshold.path == "model_stats.my-model.fallback_stages"
        assert threshold.violation({"model_stats": {"my-model": {"fallback_stages": 0}}}) is None
        assert "violated" in threshold.violation(
            {"model_stats": {"my-model": {"fallback_stages": 2}}}
        )
        with pytest.raises(ValueError):
            scrape_stats.Threshold("not an expression")
