"""Export retained request traces as Chrome trace-event JSON.

The serving stack's :class:`RequestTracer` keeps a bounded ring of
per-request span chains (tail-sampled: SLO violators and errors always
retained, healthy traffic 1-in-N).  This tool pulls those traces — over
the frame protocol from a live server, or from a JSON file a previous
pull wrote — and converts them to the Chrome trace-event format, so the
queue→batch→schedule→dispatch→execute→settle lifetime of each request
can be inspected visually in ``chrome://tracing`` or https://ui.perfetto.dev::

    PYTHONPATH=src python tools/trace_dump.py \
        --host 127.0.0.1 --port 8757 --out traces.json

    # drain the server-side rings after reading (non-idempotent):
    PYTHONPATH=src python tools/trace_dump.py --port 8757 --clear --out traces.json

    # offline re-conversion of a raw dump:
    PYTHONPATH=src python tools/trace_dump.py --input raw_traces.json --out traces.json

Each trace renders as one virtual thread whose top-level spans tile the
request's wall-clock lifetime end to end (the tracer's contiguous-cursor
contract), with stage-level child spans nested under ``execute``.  Pass
``--raw`` to write the tracer's own JSON documents instead (the format
``--input`` accepts), preserving all span metadata verbatim.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving.observability import chrome_trace  # noqa: E402
from repro.serving.transport import ServingClient  # noqa: E402


def load_traces(args: argparse.Namespace) -> "list[dict]":
    """Trace documents from ``--input`` or a live transport server.

    An input file may be a raw trace list (``--raw`` output), a
    ``{"traces": [...]}`` wrapper (the wire header), or a previous
    Chrome export — the last is rejected with a pointer to ``--raw``,
    since event soup cannot be re-grouped into traces.
    """
    if args.input is not None:
        document = json.loads(args.input.read_text(encoding="utf-8"))
        if isinstance(document, dict):
            if "traces" in document:
                return list(document["traces"])
            if "traceEvents" in document:
                raise SystemExit(
                    f"{args.input} is already a Chrome trace export; "
                    f"re-run the original dump with --raw to keep a convertible copy"
                )
            raise SystemExit(f"{args.input}: unrecognized trace document")
        return list(document)
    with ServingClient(args.host, args.port, timeout=args.timeout) as client:
        traces = client.traces(limit=args.limit, clear=args.clear)
    if not traces:
        print(
            "[trace_dump] server returned no traces (tracing disabled, "
            "nothing retained yet, or rings already cleared)",
            file=sys.stderr,
        )
    return list(traces)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1", help="transport server host")
    parser.add_argument(
        "--port", type=int, default=None, help="transport server port (required unless --input)"
    )
    parser.add_argument("--timeout", type=float, default=30.0, help="frame-protocol timeout")
    parser.add_argument(
        "--limit", type=int, default=None, help="at most this many newest traces (default all)"
    )
    parser.add_argument(
        "--clear",
        action="store_true",
        help="drain the server-side trace rings after reading (non-idempotent)",
    )
    parser.add_argument(
        "--input",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="offline: convert a raw trace JSON file instead of scraping a server",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output path (default stdout); open in chrome://tracing or Perfetto",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="write the tracer's raw JSON documents instead of Chrome trace events",
    )
    args = parser.parse_args(argv)
    if args.input is None and args.port is None:
        parser.error("--port is required unless --input FILE is given")
    if args.input is not None and args.clear:
        parser.error("--clear only applies to a live server, not --input")
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    traces = load_traces(args)
    if args.raw:
        document = {"traces": traces}
    else:
        document = chrome_trace(traces)
    rendered = json.dumps(document, indent=2)
    if args.out is not None:
        args.out.write_text(rendered + "\n", encoding="utf-8")
        events = len(document.get("traceEvents", traces))
        print(
            f"[trace_dump] wrote {len(traces)} trace(s) / {events} record(s) to {args.out}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
