"""Prometheus exposition bridge for the serving transport.

The transport server answers the ``metrics`` op with the Prometheus text
format (version 0.0.4) rendered from a live :class:`ServingMetrics`
snapshot.  This tool adapts that frame-protocol op to the two ways a
metrics pipeline actually consumes it:

**Snapshot mode** (``--once``) scrapes one exposition and writes it to
stdout or ``--out`` — for cron-driven pushes, CI artifacts, or eyeballing
what a scrape would see::

    PYTHONPATH=src python tools/export_metrics.py \
        --host 127.0.0.1 --port 8757 --once --out metrics.prom

**Serve mode** (``--serve``) runs a minimal stdlib HTTP endpoint
(``http.server``, no extra dependencies) that proxies ``GET /metrics``
to the transport server on every scrape, so a stock Prometheus instance
can pull from the serving process without speaking the frame protocol::

    PYTHONPATH=src python tools/export_metrics.py \
        --host 127.0.0.1 --port 8757 --serve --http-port 9100

**Lint mode** (``--lint-file``) parses an existing exposition file with
the in-tree :func:`parse_prometheus_text` validator (TYPE declarations,
cumulative ``le`` buckets, ``+Inf`` == ``_count``) and exits non-zero on
any violation — CI runs this against the exposition the benchmark suite
captures, so a malformed metric name or a non-cumulative histogram fails
the build before a real scraper ever sees it.

Every scraped exposition is linted before it is written or served; a
server that emits unparseable text is reported as an error, not passed
through.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving.observability import parse_prometheus_text  # noqa: E402
from repro.serving.transport import ServingClient  # noqa: E402


def lint_text(text: str, label: str) -> int:
    """Validate one exposition document; returns the sample count.

    Raises ``ValueError`` (from the parser) with the offending line when
    the document violates the text-format contract.
    """
    samples = parse_prometheus_text(text)
    if not samples:
        raise ValueError(f"{label}: exposition contains no samples")
    return len(samples)


def scrape(client: ServingClient, namespace: "str | None") -> str:
    """One linted exposition from the transport server."""
    text = client.metrics_text(namespace=namespace)
    lint_text(text, "scrape")
    return text


def serve_http(args: argparse.Namespace) -> int:
    """Stdlib HTTP /metrics endpoint proxying the transport's metrics op."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (BaseHTTPRequestHandler API)
            if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                self.send_error(404, "only /metrics is served")
                return
            try:
                with ServingClient(args.host, args.port, timeout=args.timeout) as client:
                    text = scrape(client, args.namespace)
            except Exception as exc:  # surfaced to the scraper, not swallowed
                self.send_error(502, f"{type(exc).__name__}: {exc}")
                return
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt, *log_args):
            print(f"[export_metrics] {fmt % log_args}", file=sys.stderr)

    httpd = ThreadingHTTPServer((args.http_host, args.http_port), MetricsHandler)
    print(
        f"[export_metrics] serving http://{args.http_host}:{httpd.server_address[1]}/metrics "
        f"-> frame protocol {args.host}:{args.port}",
        file=sys.stderr,
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
    return 0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1", help="transport server host")
    parser.add_argument("--port", type=int, default=None, help="transport server port")
    parser.add_argument("--namespace", default=None, help="metric name prefix override")
    parser.add_argument("--timeout", type=float, default=30.0, help="frame-protocol timeout")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--once", action="store_true", help="scrape one exposition and exit")
    mode.add_argument("--serve", action="store_true", help="run an HTTP /metrics proxy")
    mode.add_argument(
        "--lint-file",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="offline: validate an existing exposition file and exit",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None, help="write the scrape here instead of stdout"
    )
    parser.add_argument(
        "--http-host", default="127.0.0.1", help="bind address for --serve (default loopback)"
    )
    parser.add_argument(
        "--http-port", type=int, default=9100, help="HTTP port for --serve (0 = ephemeral)"
    )
    args = parser.parse_args(argv)
    if args.lint_file is None and args.port is None:
        parser.error("--port is required unless --lint-file is given")
    return args


def main(argv=None) -> int:
    args = parse_args(argv)

    if args.lint_file is not None:
        text = args.lint_file.read_text(encoding="utf-8")
        try:
            count = lint_text(text, args.lint_file.name)
        except ValueError as exc:
            print(f"[export_metrics] LINT FAIL {exc}", file=sys.stderr)
            return 1
        print(f"[export_metrics] {args.lint_file}: {count} samples, lint clean", file=sys.stderr)
        return 0

    if args.serve:
        return serve_http(args)

    started = time.monotonic()
    with ServingClient(args.host, args.port, timeout=args.timeout) as client:
        text = scrape(client, args.namespace)
    elapsed_ms = (time.monotonic() - started) * 1e3
    if args.out is not None:
        args.out.write_text(text, encoding="utf-8")
        print(
            f"[export_metrics] wrote {len(text)} bytes to {args.out} ({elapsed_ms:.1f} ms)",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
