"""Per-interval serving-metrics scraper over the frame protocol.

Connects to a running :class:`~repro.serving.transport.TransportServer`,
and on every tick scrapes one interval snapshot with the reset idiom —
``stats`` (publish the interval), then ``reset_stats`` (start the next
interval at zero) — appending one JSON line per interval to a metrics
file.  The output is ready for ``jq``, a spreadsheet import, or a
log-shipping agent::

    {"scraped_at": 1700000000.0, "interval_seconds": 5.0, "stats": {...}}

The client reconnects with capped exponential backoff (``--retries``),
so a serving-process restart shows up as a gap in the series instead of
killing the scraper.

Run with::

    PYTHONPATH=src python tools/scrape_stats.py \
        --host 127.0.0.1 --port 8757 \
        --interval 5 --count 12 --out serving_metrics.jsonl

``--count 0`` scrapes forever (stop with Ctrl-C); ``--no-reset`` turns
the scrape into a cumulative poll (no ``reset_stats``), for servers whose
stats another consumer also resets.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving.transport import ServingClient  # noqa: E402


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1", help="transport server host")
    parser.add_argument("--port", type=int, required=True, help="transport server port")
    parser.add_argument(
        "--interval", type=float, default=5.0, help="seconds between scrapes (default 5)"
    )
    parser.add_argument(
        "--count", type=int, default=0, help="number of intervals to scrape (0 = forever)"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("serving_metrics.jsonl"),
        help="metrics file to append JSON lines to",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=8,
        help="per-request reconnect retries with capped exponential backoff",
    )
    parser.add_argument(
        "--no-reset",
        action="store_true",
        help="scrape cumulative stats without calling reset_stats",
    )
    return parser.parse_args(argv)


def scrape_once(client: ServingClient, interval: float, reset: bool) -> dict:
    """One interval record: an atomic snapshot-and-reset of the window.

    ``stats(reset=True)`` zeroes the metrics under the same server-side
    lock acquisition that took the snapshot, so requests landing between
    scrapes are never lost to a gap between two separate frames.  The
    client never *resends* the reset on a transport failure (the server
    may have applied it before the reply was lost); the caller records
    such a failure as an explicit gap in the series instead.
    """
    return {
        "scraped_at": time.time(),
        "interval_seconds": interval,
        "stats": client.stats(reset=reset),
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    # max_retries covers the initial connection too, so launching the
    # scraper before (or while) the serving process restarts just waits
    # out the gap with capped exponential backoff.
    client = ServingClient(args.host, args.port, timeout=30.0, max_retries=args.retries)
    scraped = 0
    try:
        with client, args.out.open("a", encoding="utf-8") as out:
            while args.count == 0 or scraped < args.count:
                if scraped:
                    time.sleep(args.interval)
                try:
                    record = scrape_once(client, args.interval, reset=not args.no_reset)
                except (ConnectionError, EOFError, OSError) as exc:
                    # The scrape (and possibly its reset) was lost in
                    # flight.  Mark the gap explicitly — the next tick
                    # reconnects via the client's retry budget — rather
                    # than resending a non-idempotent reset.
                    record = {
                        "scraped_at": time.time(),
                        "interval_seconds": args.interval,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                out.write(json.dumps(record, separators=(",", ":")) + "\n")
                out.flush()
                scraped += 1
                if "error" in record:
                    print(f"[scrape {scraped}] lost interval: {record['error']}", file=sys.stderr)
                else:
                    requests = record["stats"].get("requests", 0)
                    print(
                        f"[scrape {scraped}] {requests} requests -> {args.out}", file=sys.stderr
                    )
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
