"""Per-interval serving-metrics scraper over the frame protocol.

Connects to a running :class:`~repro.serving.transport.TransportServer`,
and on every tick scrapes one interval snapshot with the reset idiom —
``stats`` (publish the interval), then ``reset_stats`` (start the next
interval at zero) — appending one JSON line per interval to a metrics
file.  The output is ready for ``jq``, a spreadsheet import, or a
log-shipping agent::

    {"scraped_at": 1700000000.0, "interval_seconds": 5.0, "stats": {...}}

The client reconnects with capped exponential backoff (``--retries``),
so a serving-process restart shows up as a gap in the series instead of
killing the scraper.

Run with::

    PYTHONPATH=src python tools/scrape_stats.py \
        --host 127.0.0.1 --port 8757 \
        --interval 5 --count 12 --out serving_metrics.jsonl

``--count 0`` scrapes forever (stop with Ctrl-C); ``--no-reset`` turns
the scrape into a cumulative poll (no ``reset_stats``), for servers whose
stats another consumer also resets.

**Replica-group mode** scrapes a whole group per tick: repeat
``--replica HOST:PORT`` once per replica transport and each interval
record carries ONE merged snapshot
(:func:`repro.serving.metrics.merge_server_stats`) — counters summed,
the log-linear latency histograms merged and the group percentiles
recomputed from the merged histogram (never averaged), per-replica
worker stats namespaced ``r<i>/<worker>``.  Threshold expressions
evaluate against the merged view, so ``--fail-on "deadline_exceeded>0"``
gates the *group*; replicas that are down are skipped and counted in
``unreachable_replicas`` (gate with ``--fail-on "unreachable_replicas>0"``
to alert on partial outages)::

    PYTHONPATH=src python tools/scrape_stats.py \
        --replica 127.0.0.1:8757 --replica 127.0.0.1:8758 \
        --interval 5 --count 12 --out group_metrics.jsonl

**Threshold mode** turns the scraper into an alerting gate: every
``--fail-on "metric>limit"`` expression (repeatable; dotted paths reach
nested fields, e.g. ``model_stats.my-model.fallback_stages>0``) is
evaluated against each scraped interval, violations are reported on
stderr, and the process exits non-zero if any interval violated — so a
supervisor, cron job or CI step fails instead of scrolling past a
regression.  A *missing* metric counts as a violation: an alerting
expression that silently never matches is worse than a false alarm.

``--check FILE`` evaluates the same expressions **offline** against an
existing metrics file — either a JSONL series this tool scraped (each
record's ``stats``) or a single JSON document such as the
``BENCH_serving.json`` the benchmark suite writes::

    PYTHONPATH=src python tools/scrape_stats.py --check BENCH_serving.json \
        --fail-on "cases.stock_apps_vectorized.aggregate_fallbacks>0"

which is how CI's perf-smoke step fails the build when a deployment's
batched route silently degrades to the per-row loop.

The threshold grammar is shared with the scenario-matrix harness
(:mod:`repro.bench.gates`), including its **cell paths**: against a
``BENCH_matrix.json`` document, ``cell.<selectors>.<metric>`` evaluates
the metric in every cell matching the selector tokens, one violation
per violating cell::

    PYTHONPATH=src python tools/scrape_stats.py --check BENCH_matrix.json \
        --fail-on "cell.isolet.steady.p99_ms>40" \
        --fail-on "cell.burst.failures>0"

A malformed expression exits with code 2 (usage error), distinct from
exit code 1 (violations found).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The threshold grammar — expression parsing, dotted-path resolution,
# histogram stat tokens and matrix cell paths — lives in
# repro.bench.gates, shared with `python -m repro.bench`.  The private
# aliases keep this module's historical surface intact.
from repro.bench.gates import (  # noqa: E402
    GateError,
    Threshold,
    histogram_stat as _histogram_stat,
    resolve as _resolve,
)
from repro.serving.metrics import merge_server_stats  # noqa: E402
from repro.serving.transport import ServingClient  # noqa: E402


def check_thresholds(record: dict, thresholds, label: str) -> int:
    """Report every violated threshold for one record; returns the count.

    Scraped intervals carry their metrics under ``"stats"``; standalone
    documents (``--check`` on a benchmark summary) are matched directly.
    Cell-path thresholds can violate once per matching matrix cell.
    """
    target = record.get("stats", record) if isinstance(record, dict) else record
    violations = 0
    for threshold in thresholds:
        for message in threshold.violations(target):
            violations += 1
            print(f"[{label}] FAIL {message}", file=sys.stderr)
    return violations


def _address(text: str):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1", help="transport server host")
    parser.add_argument(
        "--port", type=int, default=None, help="transport server port (required unless --check)"
    )
    parser.add_argument(
        "--replica",
        action="append",
        type=_address,
        default=[],
        metavar="HOST:PORT",
        help="replica-group mode: scrape each replica's transport "
        "(repeatable) and emit one merged group snapshot per interval — "
        "counters summed, latency histograms merged and group percentiles "
        "recomputed, worker stats namespaced per replica; thresholds "
        "evaluate against the merged view",
    )
    parser.add_argument(
        "--interval", type=float, default=5.0, help="seconds between scrapes (default 5)"
    )
    parser.add_argument(
        "--count", type=int, default=0, help="number of intervals to scrape (0 = forever)"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("serving_metrics.jsonl"),
        help="metrics file to append JSON lines to",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=8,
        help="per-request reconnect retries with capped exponential backoff",
    )
    parser.add_argument(
        "--no-reset",
        action="store_true",
        help="scrape cumulative stats without calling reset_stats",
    )
    parser.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="EXPR",
        help="threshold expression (repeatable), e.g. 'fallback_stages>0'; "
        "any scraped interval (or checked record) matching the expression "
        "makes the process exit non-zero",
    )
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="offline mode: evaluate --fail-on thresholds against an existing "
        "metrics JSONL or a single JSON document (e.g. BENCH_serving.json) "
        "instead of scraping a live server",
    )
    args = parser.parse_args(argv)
    if args.check is None and args.port is None and not args.replica:
        parser.error("--port (or --replica) is required unless --check FILE is given")
    if args.port is not None and args.replica:
        parser.error("--port and --replica are mutually exclusive")
    if args.check is not None and not args.fail_on:
        parser.error("--check needs at least one --fail-on expression")
    return args


def scrape_once(client: ServingClient, interval: float, reset: bool) -> dict:
    """One interval record: an atomic snapshot-and-reset of the window.

    ``stats(reset=True)`` zeroes the metrics under the same server-side
    lock acquisition that took the snapshot, so requests landing between
    scrapes are never lost to a gap between two separate frames.  The
    client never *resends* the reset on a transport failure (the server
    may have applied it before the reply was lost); the caller records
    such a failure as an explicit gap in the series instead.
    """
    return {
        "scraped_at": time.time(),
        "interval_seconds": interval,
        "stats": client.stats(reset=reset),
    }


def scrape_group(clients, interval: float, reset: bool) -> dict:
    """One merged interval record across a replica group.

    Each replica is scraped with the same atomic snapshot-and-reset;
    unreachable replicas contribute nothing to the merge (they are
    counted in ``unreachable_replicas`` so a gate like
    ``unreachable_replicas>0`` can alert on partial outages).  Only when
    *every* replica is unreachable does the interval count as lost.
    """
    snapshots = []
    unreachable = 0
    for client in clients:
        try:
            snapshots.append(client.stats(reset=reset))
        except (ConnectionError, EOFError, OSError):
            snapshots.append(None)
            unreachable += 1
    if unreachable == len(clients):
        raise ConnectionError(f"all {len(clients)} replicas unreachable")
    record = {
        "scraped_at": time.time(),
        "interval_seconds": interval,
        "replicas": len(clients),
        "unreachable_replicas": unreachable,
        "stats": merge_server_stats(snapshots),
    }
    return record


def check_file(path: pathlib.Path, thresholds) -> int:
    """Offline threshold evaluation; returns the total violation count.

    Accepts either a JSONL series (one record per line, as this tool
    scrapes) or one JSON document (e.g. a ``BENCH_*.json`` summary).
    """
    text = path.read_text(encoding="utf-8")
    try:
        records = [json.loads(text)]
    except json.JSONDecodeError:
        records = [json.loads(line) for line in text.splitlines() if line.strip()]
    violations = 0
    for index, record in enumerate(records):
        label = path.name if len(records) == 1 else f"{path.name}:{index + 1}"
        if isinstance(record, dict) and "error" in record and "stats" not in record:
            # A lost-interval marker from the live scraper (connection
            # blip) — skipped, matching live mode, not a metric failure.
            print(f"[{label}] skipping lost interval: {record['error']}", file=sys.stderr)
            continue
        violations += check_thresholds(record, thresholds, label)
    return violations


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        thresholds = [Threshold(expression) for expression in args.fail_on]
    except GateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.check is not None:
        violations = check_file(args.check, thresholds)
        if violations:
            print(f"{violations} threshold violation(s) in {args.check}", file=sys.stderr)
            return 1
        print(f"{args.check}: all {len(thresholds)} threshold(s) clean", file=sys.stderr)
        return 0

    # max_retries covers the initial connection too, so launching the
    # scraper before (or while) the serving process restarts just waits
    # out the gap with capped exponential backoff.
    addresses = args.replica if args.replica else [(args.host, args.port)]
    clients = [
        ServingClient(host, port, timeout=30.0, max_retries=args.retries)
        for host, port in addresses
    ]
    scraped = 0
    violations = 0
    try:
        with args.out.open("a", encoding="utf-8") as out:
            while args.count == 0 or scraped < args.count:
                if scraped:
                    time.sleep(args.interval)
                try:
                    if args.replica:
                        record = scrape_group(clients, args.interval, reset=not args.no_reset)
                    else:
                        record = scrape_once(clients[0], args.interval, reset=not args.no_reset)
                except (ConnectionError, EOFError, OSError) as exc:
                    # The scrape (and possibly its reset) was lost in
                    # flight.  Mark the gap explicitly — the next tick
                    # reconnects via the client's retry budget — rather
                    # than resending a non-idempotent reset.
                    record = {
                        "scraped_at": time.time(),
                        "interval_seconds": args.interval,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                out.write(json.dumps(record, separators=(",", ":")) + "\n")
                out.flush()
                scraped += 1
                if "error" in record:
                    print(f"[scrape {scraped}] lost interval: {record['error']}", file=sys.stderr)
                else:
                    violations += check_thresholds(record, thresholds, f"scrape {scraped}")
                    requests = record["stats"].get("requests", 0)
                    print(
                        f"[scrape {scraped}] {requests} requests -> {args.out}", file=sys.stderr
                    )
    except KeyboardInterrupt:
        pass
    finally:
        for client in clients:
            client.close()
    if violations:
        print(f"{violations} threshold violation(s) across {scraped} scrape(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
