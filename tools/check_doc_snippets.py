"""Execute the fenced Python snippets of README.md and docs/*.md.

Documentation that cannot run is documentation that rots.  This runner
extracts every ```python fenced block from the given markdown files and
executes each file's snippets in order inside one shared namespace (so a
later snippet can build on an earlier one's variables, mirroring how a
reader follows the page top to bottom).

A block is skipped when the line immediately above its opening fence is
the marker comment::

    <!-- doc-snippet: skip -->

Use the marker for illustrative fragments (pseudo-code, shell-flavoured
transcripts) that are not meant to execute.

Exit status is non-zero on the first failing snippet, printing the file,
the snippet index and the traceback — which is what the CI docs job
asserts on.

Run with:  PYTHONPATH=src python tools/check_doc_snippets.py [files...]
(defaults to README.md plus every markdown file under docs/).
"""

from __future__ import annotations

import pathlib
import sys
import traceback
from typing import List, Tuple

SKIP_MARKER = "<!-- doc-snippet: skip -->"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def extract_snippets(text: str) -> List[Tuple[int, str]]:
    """All runnable ```python blocks as ``(start_line, source)`` pairs."""
    snippets: List[Tuple[int, str]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        if line in ("```python", "```py"):
            skip = index > 0 and lines[index - 1].strip() == SKIP_MARKER
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and lines[index].strip() != "```":
                body.append(lines[index])
                index += 1
            if not skip:
                snippets.append((start + 1, "\n".join(body)))
        index += 1
    return snippets


def default_files() -> List[pathlib.Path]:
    files = []
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def run_file(path: pathlib.Path) -> int:
    """Execute one file's snippets in a shared namespace; returns count."""
    snippets = extract_snippets(path.read_text())
    namespace: dict = {"__name__": "__doc_snippet__"}
    try:
        label = path.relative_to(REPO_ROOT)
    except ValueError:
        label = path
    for number, (line, source) in enumerate(snippets, start=1):
        try:
            code = compile(source, f"{path.name}:snippet-{number}", "exec")
            exec(code, namespace)
        except Exception:
            print(f"FAILED {path} snippet {number} (line {line}):", file=sys.stderr)
            traceback.print_exc()
            raise SystemExit(1)
        print(f"ok {label} snippet {number} (line {line})")
    return len(snippets)


def main(argv: List[str]) -> int:
    files = [pathlib.Path(arg).resolve() for arg in argv] if argv else default_files()
    if not files:
        print("no markdown files to check", file=sys.stderr)
        return 1
    total = 0
    for path in files:
        total += run_file(path)
    print(f"{total} snippet(s) across {len(files)} file(s) executed cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
