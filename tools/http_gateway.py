"""REST front door for a running serving replica group.

Starts an :class:`~repro.serving.transport.HttpGateway` translating
HTTP/JSON requests into frame-protocol calls against one or more
transport servers.  Point it at each replica's transport address
(repeat ``--replica``); the gateway's client pool rendezvous-routes
every model to a consistent replica and shares one reconnect retry
budget across all pooled connections, so a replica outage costs a
bounded number of retries for the whole gateway, not per thread.

Run with::

    PYTHONPATH=src python tools/http_gateway.py \
        --replica 127.0.0.1:8757 --replica 127.0.0.1:8758 \
        --host 127.0.0.1 --port 8080

then::

    curl -s http://127.0.0.1:8080/healthz
    curl -s http://127.0.0.1:8080/v1/models
    curl -s -X POST http://127.0.0.1:8080/v1/models/isolet:infer \
        -d '{"sample": [0.1, 0.2, ...], "min_version": 3}'

A version-pinned request against a replica that missed the latest
group-wide update answers **409** with the model's current and required
versions in the body; a shed deadline answers **504**; an unknown model
**404** — typed failures, not opaque 500s, so load balancers and
clients can react per cause.
"""

from __future__ import annotations

import argparse
import pathlib
import signal
import sys
import threading

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving.replica import ClientPool  # noqa: E402
from repro.serving.transport import HttpGateway, RetryBudget  # noqa: E402


def _address(text: str):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--replica",
        action="append",
        type=_address,
        default=[],
        metavar="HOST:PORT",
        help="transport address of one replica (repeatable, at least one)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="gateway bind address")
    parser.add_argument("--port", type=int, default=8080, help="gateway TCP port (0=ephemeral)")
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request frame-protocol timeout"
    )
    parser.add_argument(
        "--retries", type=int, default=8, help="per-request reconnect retries (jittered backoff)"
    )
    parser.add_argument(
        "--budget-tokens",
        type=float,
        default=20.0,
        help="shared retry-budget tokens across all pooled clients",
    )
    args = parser.parse_args(argv)
    if not args.replica:
        parser.error("at least one --replica HOST:PORT is required")
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    pool = ClientPool(
        args.replica,
        retry_budget=RetryBudget(tokens=args.budget_tokens),
        timeout=args.timeout,
        max_retries=args.retries,
    )
    gateway = HttpGateway(pool, host=args.host, port=args.port)
    host, port = gateway.start()
    print(
        f"gateway listening on http://{host}:{port} "
        f"({len(args.replica)} replica(s))",
        file=sys.stderr,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        gateway.stop()
        pool.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
