"""Setuptools entry point (kept for legacy editable installs without the
``wheel`` package; all metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
